//! Regenerates every table and figure of the paper.
//!
//! ```text
//! vstress-repro                    # quick profile, all experiments
//! vstress-repro --quick            # the same, spelled out (CI uses this)
//! vstress-repro --paper            # full profile (slow; used for EXPERIMENTS.md)
//! vstress-repro --csv out/         # also write each table as CSV into out/
//! vstress-repro --threads 4        # size of the encode worker pool
//! vstress-repro --tile-workers 4   # intra-encode tile/wavefront threads
//! vstress-repro --store cache/     # persist results; repeat runs resume
//! vstress-repro --time             # per-experiment wall clock on stderr
//! vstress-repro fig01 fig05        # subset of experiments
//! vstress-repro --store cache/ store-stats   # store maintenance report
//! ```
//!
//! With `--store DIR`, completed characterization runs (and branch
//! windows / decode-cost pairs) persist under `DIR`, so an interrupted
//! or repeated invocation of the same profile reloads them instead of
//! re-encoding — the second run performs zero encodes and prints
//! byte-identical tables. `--no-store` (the default) disables it; store
//! diagnostics go to stderr only, so stdout stays comparable across
//! runs.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;
use vstress::cli::{self, FlagSpec};
use vstress::experiments::{
    catalogue, cbp, crf_sweep, decode_cost, mix, preset_sweep, profile, runtime_quality, threads,
    ExperimentConfig,
};
use vstress::{RunStore, Table};

/// Every flag this binary accepts; anything else `--`-prefixed is a
/// usage error (exit 2), as are missing or flag-like values.
const FLAGS: &[FlagSpec] = &[
    FlagSpec::switch("--quick", "quick profile (the default, spelled out)"),
    FlagSpec::switch("--paper", "full profile (slow; behind EXPERIMENTS.md)"),
    FlagSpec::switch("--time", "per-experiment wall clock on stderr"),
    FlagSpec::value("--csv", "DIR", "also write each table as CSV into DIR"),
    FlagSpec::value("--threads", "N", "encode worker pool size (positive)"),
    FlagSpec::value("--tile-workers", "N", "tile/wavefront threads per encode (positive)"),
    FlagSpec::value("--store", "DIR", "persist results; repeat runs resume"),
    FlagSpec::switch("--no-store", "disable the store (wins over --store)"),
];

/// Prints a usage error plus the flag table and exits 2.
fn usage_error(e: &cli::CliError) -> ! {
    eprintln!("error: {e}");
    eprint!("{}", cli::usage("vstress-repro", "[flags] [experiment ids...]", FLAGS));
    std::process::exit(cli::USAGE_EXIT.into());
}

/// Every experiment id accepted as a positional argument.
///
/// `store-stats` is a maintenance report, not an experiment: it prints
/// the attached store's on-disk footprint (entries and bytes per kind,
/// plus quarantined files) and runs **only when explicitly named**, so
/// the default experiment set's stdout stays byte-comparable.
const EXPERIMENT_IDS: &[&str] = &[
    "table1",
    "fig01",
    "fig02",
    "fig02a",
    "fig02b",
    "table2",
    "fig03",
    "fig04",
    "fig05",
    "fig06",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "decode",
    "profile",
    "store-stats",
];

/// Prints a table and optionally mirrors it to `<csv_dir>/<slug>.csv`.
///
/// A failed CSV write is an error: `--csv` promises a complete artifact
/// directory, so a truncated one must fail the process, not warn.
fn emit(csv_dir: &Option<PathBuf>, slug: &str, table: &Table) -> std::io::Result<()> {
    println!("{table}");
    if let Some(dir) = csv_dir {
        let path = dir.join(format!("{slug}.csv"));
        std::fs::write(&path, table.to_csv())
            .map_err(|e| std::io::Error::new(e.kind(), format!("{}: {e}", path.display())))?;
    }
    Ok(())
}

/// Runs one experiment body, reporting its wall clock on stderr when
/// `--time` is set. Stdout carries only the tables either way, so runs
/// stay byte-comparable.
fn timed(
    enabled: bool,
    id: &str,
    body: impl FnOnce() -> std::io::Result<()>,
) -> std::io::Result<()> {
    let t0 = std::time::Instant::now();
    let r = body();
    if enabled {
        eprintln!("vstress-repro: [time] {id}: {:.3}s", t0.elapsed().as_secs_f64());
    }
    r
}

fn run(
    cfg: &ExperimentConfig,
    want: impl Fn(&str) -> bool,
    csv_dir: &Option<PathBuf>,
    time: bool,
) -> std::io::Result<()> {
    if want("table1") {
        timed(time, "table1", || emit(csv_dir, "table1", &catalogue::table1_vbench()))?;
    }
    if want("fig01") {
        timed(time, "fig01", || {
            let (t, _) = runtime_quality::fig01_runtime_vs_crf(cfg).expect("fig01");
            emit(csv_dir, "fig01", &t)
        })?;
    }
    if want("fig02") || want("fig02a") || want("fig02b") {
        timed(time, "fig02", || {
            let (t, _) = runtime_quality::fig02a_bdrate(cfg).expect("fig02a");
            emit(csv_dir, "fig02a", &t)?;
            emit(csv_dir, "fig02b", &runtime_quality::fig02b_psnr_vs_time(cfg).expect("fig02b"))
        })?;
    }
    if want("table2") {
        timed(time, "table2", || {
            emit(csv_dir, "table2", &mix::table2_instruction_mix(cfg).expect("table2"))
        })?;
    }
    if want("fig03") {
        timed(time, "fig03", || {
            emit(csv_dir, "fig03", &mix::fig03_opmix_sweep(cfg).expect("fig03"))
        })?;
    }
    if want("fig04") || want("fig05") || want("fig06") || want("fig07") {
        timed(time, "fig04-07", || {
            let points = crf_sweep::crf_sweep(cfg).expect("crf sweep");
            emit(csv_dir, "fig04", &crf_sweep::fig04_crf_sweep(&points))?;
            emit(csv_dir, "fig05", &crf_sweep::fig05_topdown(&points))?;
            emit(csv_dir, "fig06", &crf_sweep::fig06_microarch(&points))?;
            emit(csv_dir, "fig07", &crf_sweep::fig07_missrate(&points))
        })?;
    }
    if want("fig08") {
        timed(time, "fig08", || {
            let (t, _) = cbp::fig08_cbp(cfg).expect("fig08");
            emit(csv_dir, "fig08", &t)
        })?;
    }
    if want("fig09") {
        timed(time, "fig09", || {
            let (t, _) = cbp::fig09_cbp(cfg).expect("fig09");
            emit(csv_dir, "fig09", &t)
        })?;
    }
    if want("fig10") {
        timed(time, "fig10", || {
            let (t, _) = cbp::fig10_cbp(cfg).expect("fig10");
            emit(csv_dir, "fig10", &t)
        })?;
    }
    if want("fig11") {
        timed(time, "fig11", || {
            let points = preset_sweep::preset_sweep(cfg).expect("fig11");
            emit(csv_dir, "fig11ab", &preset_sweep::fig11ab_runtime_quality(&points))?;
            emit(csv_dir, "fig11cde", &preset_sweep::fig11cde_microarch(&points))
        })?;
    }
    if want("fig12") || want("fig13") || want("fig14") || want("fig15") {
        timed(time, "fig12-15", || {
            let (tables, _) = threads::fig12_15_thread_scaling(cfg).expect("fig12-15");
            for (i, t) in tables.iter().enumerate() {
                emit(csv_dir, &format!("fig{}", 12 + i), t)?;
            }
            Ok(())
        })?;
    }
    if want("fig16") {
        timed(time, "fig16", || {
            emit(csv_dir, "fig16", &threads::fig16_topdown_threads(cfg).expect("fig16"))
        })?;
    }
    if want("decode") {
        timed(time, "decode", || {
            let (t, _) = decode_cost::table_decode_vs_encode(cfg).expect("decode cost");
            emit(csv_dir, "decode_cost", &t)
        })?;
    }
    if want("store-stats") {
        if let Some(store) = cfg.cache.store() {
            timed(time, "store-stats", || emit(csv_dir, "store_stats", &store_stats_table(store)))?;
        }
    }
    if want("profile") {
        timed(time, "profile", || {
            emit(csv_dir, "hot_kernels", &profile::table_hot_kernels(cfg).expect("profile"))
        })?;
    }
    Ok(())
}

/// The `store-stats` maintenance report: one row per entry kind plus a
/// quarantine total, from [`RunStore::disk_usage`].
fn store_stats_table(store: &RunStore) -> Table {
    let usage = store.disk_usage();
    let mut t = Table::new(
        format!("Store statistics (schema v{})", vstress::SCHEMA_VERSION),
        &["kind", "entries", "bytes"],
    );
    for k in &usage.kinds {
        t.push_row(vec![k.kind.clone(), k.entries.to_string(), k.bytes.to_string()]);
    }
    t.push_row(vec!["(quarantined)".into(), usage.quarantined.to_string(), "-".into()]);
    t
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match cli::parse(&args, FLAGS) {
        Ok(p) => p,
        Err(e) => usage_error(&e),
    };
    let paper = parsed.switch("--paper");
    // `--quick` names the default profile explicitly (scripts and CI can
    // state their intent); it only conflicts with `--paper`.
    if paper && parsed.switch("--quick") {
        eprintln!("--quick and --paper are mutually exclusive");
        std::process::exit(cli::USAGE_EXIT.into());
    }
    let time = parsed.switch("--time");
    let csv_dir: Option<PathBuf> = parsed.value("--csv").map(PathBuf::from);
    if let Some(dir) = &csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
    let threads: Option<usize> = match parsed.parsed("--threads", cli::positive_usize) {
        Ok(t) => t,
        Err(e) => usage_error(&e),
    };
    // Intra-encode parallelism; stdout is byte-identical at any value
    // (the probe-merge contract), so CI compares runs across settings.
    let tile_workers: Option<usize> = match parsed.parsed("--tile-workers", cli::positive_usize) {
        Ok(t) => t,
        Err(e) => usage_error(&e),
    };
    // `--no-store` (the default) wins over `--store` if both appear.
    let store_dir: Option<PathBuf> =
        if parsed.switch("--no-store") { None } else { parsed.value("--store").map(PathBuf::from) };
    let unknown: Vec<&String> =
        parsed.positionals.iter().filter(|p| !EXPERIMENT_IDS.contains(&p.as_str())).collect();
    if !unknown.is_empty() {
        for u in &unknown {
            eprintln!("unknown experiment: {u}");
        }
        eprintln!("valid experiments: {}", EXPERIMENT_IDS.join(" "));
        std::process::exit(cli::USAGE_EXIT.into());
    }
    let wanted: BTreeSet<String> = parsed.positionals.into_iter().collect();
    let mut cfg = if paper { ExperimentConfig::paper() } else { ExperimentConfig::quick() };
    if let Some(n) = threads {
        cfg = cfg.with_threads(n);
    }
    if let Some(n) = tile_workers {
        cfg = cfg.with_tile_workers(n);
    }
    if let Some(dir) = &store_dir {
        match RunStore::open(dir) {
            Ok(store) => cfg = cfg.with_store(Arc::new(store)),
            Err(e) => {
                eprintln!("cannot open store {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
    }
    // `store-stats` only runs when explicitly named and needs a store.
    if wanted.contains("store-stats") && store_dir.is_none() {
        eprintln!("store-stats requires --store DIR");
        std::process::exit(cli::USAGE_EXIT.into());
    }
    let run_all = wanted.is_empty();
    let want = |id: &str| (run_all && id != "store-stats") || wanted.contains(id);

    eprintln!(
        "vstress-repro: profile = {}, threads = {}, clips = {:?}",
        if paper { "paper" } else { "quick" },
        cfg.threads,
        cfg.clips
    );
    if let Some(dir) = &store_dir {
        eprintln!("vstress-repro: store = {}", dir.display());
    }

    let result = run(&cfg, want, &csv_dir, time);

    if store_dir.is_some() {
        let s = cfg.cache.stats();
        eprintln!(
            "vstress-repro: store {} hits, {} misses, {} quarantined",
            s.store_hits, s.store_misses, s.store_quarantined
        );
        eprintln!(
            "vstress-repro: work {} encodes, {} stream captures",
            s.encodes, s.stream_captures
        );
    }
    if let Err(e) = result {
        eprintln!("error: could not write CSV: {e}");
        std::process::exit(1);
    }
}
