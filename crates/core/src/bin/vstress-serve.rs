//! A long-running encode service under deterministic synthetic traffic.
//!
//! ```text
//! vstress-serve                          # 32 quick-mix jobs, seed 42, drain, summarize
//! vstress-serve --seed 7 --jobs 100      # a different fixed schedule
//! vstress-serve --workers 4 --queue-cap 8
//! vstress-serve --reject --pace 1        # real-time replay, shed on overload
//! vstress-serve --store cache/ --prewarm # encode unique specs first, then serve warm
//! vstress-serve --stdin                  # drain-then-exit on stdin EOF
//! ```
//!
//! Stdout carries the deterministic job-level summary (same seed ⇒
//! byte-identical at any worker count under the default block/unpaced
//! policy); wall-clock metrics — throughput, measured p50/p95/p99
//! latency, queue gauges — go to stderr. SIGINT/SIGTERM (and stdin EOF
//! with `--stdin`) request a graceful drain: no new jobs are admitted,
//! queued work finishes, then the summary prints. The first signal also
//! restores the default disposition, so a second Ctrl-C force-exits
//! instead of being ignored during a long drain.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use vstress::cli::{self, FlagSpec};
use vstress::serve::{generate, prewarm, serve, IngressPolicy, ServeConfig, TrafficConfig};
use vstress::{RunCache, RunStore};

/// Every flag this binary accepts; anything else `--`-prefixed is a
/// usage error (exit 2), as are missing or flag-like values.
const FLAGS: &[FlagSpec] = &[
    FlagSpec::value("--seed", "N", "traffic seed (default 42)"),
    FlagSpec::value("--jobs", "N", "jobs to offer (default 32)"),
    FlagSpec::value("--workers", "N", "encode worker pool size (default: cores)"),
    FlagSpec::value("--tile-workers", "N", "tile/wavefront threads per encode (default 1)"),
    FlagSpec::value("--queue-cap", "N", "ingress queue capacity (default 16)"),
    FlagSpec::value("--stage-cap", "N", "interior queue capacity (default 16)"),
    FlagSpec::switch("--reject", "shed jobs when ingress is full (default: block)"),
    FlagSpec::value("--pace", "X", "real-time pacing factor; 0 = unpaced (default)"),
    FlagSpec::switch("--standard", "standard job mix (full ladder; default: quick)"),
    FlagSpec::value("--mean-gap-ms", "N", "override mean inter-arrival gap"),
    FlagSpec::value("--store", "DIR", "persistent run store shared with vstress-repro"),
    FlagSpec::switch("--prewarm", "batch-encode unique specs before serving"),
    FlagSpec::switch("--stdin", "treat stdin EOF as a shutdown request"),
];

/// The process-wide graceful-shutdown request flag, raised by
/// SIGINT/SIGTERM and (with `--stdin`) by stdin EOF.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sig {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    /// `SIG_DFL` — the platform's default disposition (terminate, for
    /// SIGINT/SIGTERM).
    const SIG_DFL: usize = 0;

    extern "C" fn request_shutdown(signum: i32) {
        // Only an atomic store and a signal(2) call: async-signal-safe.
        SHUTDOWN.store(true, Ordering::Release);
        // Two-stage shutdown: the first signal requests a graceful
        // drain; restoring the default disposition here means a second
        // Ctrl-C (or TERM) kills the process immediately instead of
        // being swallowed while a long drain runs. Without this, an
        // operator facing a stuck drain had no way out short of
        // SIGKILL.
        unsafe {
            let _ = signal(signum, SIG_DFL);
        }
    }

    // The handler slot is a `usize` so the same declaration covers both
    // a function pointer (install) and `SIG_DFL` (restore).
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Routes SIGINT (2) and SIGTERM (15) into the shutdown flag.
    pub fn install() {
        unsafe {
            let _ = signal(2, request_shutdown as extern "C" fn(i32) as usize);
            let _ = signal(15, request_shutdown as extern "C" fn(i32) as usize);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    /// No signal routing off unix; `--stdin` still works.
    pub fn install() {}
}

/// Watches stdin on a detached thread and raises the shutdown flag on
/// EOF (or a read error). Content is ignored — the pipe closing *is*
/// the signal, which lets a supervisor stop the service portably.
fn watch_stdin() {
    std::thread::spawn(|| {
        use std::io::Read;
        let mut sink = [0u8; 1024];
        let mut stdin = std::io::stdin();
        loop {
            match stdin.read(&mut sink) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
        SHUTDOWN.store(true, Ordering::Release);
    });
}

fn usage_error(e: &cli::CliError) -> ! {
    eprintln!("error: {e}");
    eprint!("{}", cli::usage("vstress-serve", "[flags]", FLAGS));
    std::process::exit(cli::USAGE_EXIT.into());
}

/// A non-negative float for `--pace`.
fn pace_value(raw: &str) -> Result<f64, String> {
    match raw.parse::<f64>() {
        Ok(x) if x.is_finite() && x >= 0.0 => Ok(x),
        _ => Err("expected a finite non-negative number".to_owned()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match cli::parse(&args, FLAGS) {
        Ok(p) => p,
        Err(e) => usage_error(&e),
    };
    if !parsed.positionals.is_empty() {
        eprintln!("error: unexpected argument: {}", parsed.positionals[0]);
        eprint!("{}", cli::usage("vstress-serve", "[flags]", FLAGS));
        return ExitCode::from(cli::USAGE_EXIT);
    }
    macro_rules! flag {
        ($name:expr, $parse:expr, $default:expr) => {
            match parsed.parsed($name, $parse) {
                Ok(v) => v.unwrap_or($default),
                Err(e) => usage_error(&e),
            }
        };
    }
    let seed = flag!("--seed", |s: &str| s.parse::<u64>(), 42);
    let jobs = flag!("--jobs", cli::positive_usize, 32);
    let workers = flag!("--workers", cli::positive_usize, vstress::exec::default_threads());
    let tile_workers = flag!("--tile-workers", cli::positive_usize, 1);
    let queue_cap = flag!("--queue-cap", cli::positive_usize, 16);
    let stage_cap = flag!("--stage-cap", cli::positive_usize, 16);
    let pace = flag!("--pace", pace_value, 0.0);
    let standard = parsed.switch("--standard");

    let mut traffic = if standard {
        TrafficConfig::standard(seed, jobs)
    } else {
        TrafficConfig::quick(seed, jobs)
    };
    match parsed.parsed("--mean-gap-ms", cli::positive_usize) {
        Ok(Some(ms)) => traffic.mean_gap_us = ms as u64 * 1000,
        Ok(None) => {}
        Err(e) => usage_error(&e),
    }

    let cache = match parsed.value("--store") {
        None => Arc::new(RunCache::new()),
        Some(dir) => match RunStore::open(std::path::Path::new(dir)) {
            Ok(store) => Arc::new(RunCache::with_store(Arc::new(store))),
            Err(e) => {
                eprintln!("cannot open store {dir}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let cfg = ServeConfig {
        workers,
        ingress_capacity: queue_cap,
        stage_capacity: stage_cap,
        ingress: if parsed.switch("--reject") {
            IngressPolicy::Reject
        } else {
            IngressPolicy::Block
        },
        pace,
        cache,
        tile_workers,
    };

    sig::install();
    if parsed.switch("--stdin") {
        watch_stdin();
    }

    let schedule = generate(&traffic);
    eprintln!(
        "vstress-serve: profile={} seed={} jobs={} workers={} tile-workers={} ingress={} cap={} stage-cap={} pace={}",
        if standard { "standard" } else { "quick" },
        seed,
        schedule.len(),
        cfg.workers,
        cfg.tile_workers,
        if cfg.ingress == IngressPolicy::Reject { "reject" } else { "block" },
        cfg.ingress_capacity,
        cfg.stage_capacity,
        cfg.pace,
    );

    if parsed.switch("--prewarm") {
        match prewarm(&cfg, &schedule) {
            Ok(n) => eprintln!("vstress-serve: prewarmed {n} unique specs"),
            Err(e) => {
                eprintln!("error: prewarm failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let report = serve(&cfg, &schedule, &SHUTDOWN);

    // Deterministic job-level summary on stdout; everything wall-clock
    // on stderr, so fixed-seed runs stay byte-comparable.
    print!("serve seed {seed}\n{}", report.job_summary());
    eprint!("{}", report.wall_summary());
    if cfg.cache.store().is_some() {
        let s = cfg.cache.stats();
        eprintln!(
            "vstress-serve: store {} hits, {} misses, {} quarantined",
            s.store_hits, s.store_misses, s.store_quarantined
        );
    }
    if report.drained {
        eprintln!(
            "vstress-serve: drained cleanly ({} completed, {} failed, {} rejected, {} shed)",
            report.completed.len(),
            report.failed.len(),
            report.rejected.len(),
            report.shed_on_shutdown.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("vstress-serve: drain incomplete");
        ExitCode::FAILURE
    }
}
