//! Encode/decode CLI over real files.
//!
//! ```text
//! vstress-transcode encode <in.y4m|clip:NAME> <out.vst> [codec] [crf] [preset] [keyint]
//! vstress-transcode decode <in.vst> <out.y4m>
//! vstress-transcode info   <in.vst>
//! vstress-transcode trace  [--store DIR] <in.y4m|clip:NAME> <out.vbt> [crf] [preset]
//! ```
//!
//! `trace` captures a mid-run branch window (the paper's Pin protocol)
//! into a CBP-style trace file replayable by `branch_predictor_lab`.
//! With `--store DIR` and a `clip:` input, the counting pass and the
//! captured window persist in the same on-disk store `vstress-repro
//! --store` uses, so repeated traces of one configuration skip both
//! encodes.
//!
//! Inputs may be Y4M files or `clip:<vbench-name>` to synthesize one of
//! the catalogue clips. Codec names: svt-av1 (default), libaom, vp9,
//! x264, x265.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;
use vstress::cli::{self, FlagSpec};
use vstress::codecs::{CodecId, Decoder, Encoder, EncoderParams};

/// The only flag this binary accepts (`trace` subcommand); unknown
/// `--flags` and missing/flag-like values are usage errors (exit 2).
const FLAGS: &[FlagSpec] =
    &[FlagSpec::value("--store", "DIR", "persistent run store (trace, clip: inputs)")];
use vstress::trace::NullProbe;
use vstress::video::vbench::{self, FidelityConfig};
use vstress::video::{y4m, Clip};

fn parse_codec(name: &str) -> Option<CodecId> {
    match name {
        "svt-av1" | "svt" | "av1" => Some(CodecId::SvtAv1),
        "libaom" | "aom" => Some(CodecId::Libaom),
        "vp9" | "libvpx-vp9" => Some(CodecId::LibvpxVp9),
        "x264" | "h264" => Some(CodecId::X264),
        "x265" | "hevc" => Some(CodecId::X265),
        _ => None,
    }
}

fn load_clip(spec: &str) -> Result<Clip, String> {
    if let Some(name) = spec.strip_prefix("clip:") {
        let c = vbench::clip(name).map_err(|e| e.to_string())?;
        return Ok(c.synthesize(&FidelityConfig::default()));
    }
    let file = File::open(spec).map_err(|e| format!("{spec}: {e}"))?;
    y4m::read_y4m(BufReader::new(file), spec).map_err(|e| e.to_string())
}

fn run(parsed: &cli::Parsed) -> Result<(), String> {
    let store_dir: Option<String> = parsed.value("--store").map(str::to_owned);
    let args = &parsed.positionals;
    match args.first().map(String::as_str) {
        Some("encode") => {
            let input = args.get(1).ok_or("encode needs an input")?;
            let output = args.get(2).ok_or("encode needs an output path")?;
            let codec = parse_codec(args.get(3).map(String::as_str).unwrap_or("svt-av1"))
                .ok_or("unknown codec")?;
            let default_crf = codec.max_crf() / 2;
            let crf: u8 = args
                .get(4)
                .map(|s| s.parse().map_err(|_| "bad crf"))
                .transpose()?
                .unwrap_or(default_crf);
            let preset: u8 = args
                .get(5)
                .map(|s| s.parse().map_err(|_| "bad preset"))
                .transpose()?
                .unwrap_or(codec.max_preset() / 2);
            let keyint: u8 =
                args.get(6).map(|s| s.parse().map_err(|_| "bad keyint")).transpose()?.unwrap_or(0);
            let clip = load_clip(input)?;
            let enc = Encoder::new(codec, EncoderParams::new(crf, preset).with_keyint(keyint))
                .map_err(|e| e.to_string())?;
            let out = enc.encode(&clip, &mut NullProbe).map_err(|e| e.to_string())?;
            std::fs::write(output, &out.bitstream).map_err(|e| e.to_string())?;
            eprintln!(
                "{codec}: {} frames, {:.1} kbps, {:.2} dB PSNR -> {output} ({} bytes)",
                clip.frames().len(),
                out.bitrate_kbps,
                out.mean_psnr(),
                out.bitstream.len()
            );
            Ok(())
        }
        Some("decode") => {
            let input = args.get(1).ok_or("decode needs an input")?;
            let output = args.get(2).ok_or("decode needs an output path")?;
            let data = std::fs::read(input).map_err(|e| format!("{input}: {e}"))?;
            let dec = Decoder::new().decode(&data, &mut NullProbe).map_err(|e| e.to_string())?;
            let clip = Clip::from_frames("decoded", dec.frames, dec.header.fps as f64)
                .map_err(|e| e.to_string())?;
            let file = File::create(output).map_err(|e| e.to_string())?;
            y4m::write_y4m(&clip, BufWriter::new(file)).map_err(|e| e.to_string())?;
            eprintln!(
                "decoded {} {} frames ({}x{}) -> {output}",
                dec.header.codec,
                clip.frames().len(),
                dec.header.width,
                dec.header.height
            );
            Ok(())
        }
        Some("trace") => {
            let input = args.get(1).ok_or("trace needs an input")?;
            let output = args.get(2).ok_or("trace needs an output path")?;
            let crf: u8 =
                args.get(3).map(|s| s.parse().map_err(|_| "bad crf")).transpose()?.unwrap_or(63);
            let preset: u8 =
                args.get(4).map(|s| s.parse().map_err(|_| "bad preset")).transpose()?.unwrap_or(8);
            let clip_name = input.strip_prefix("clip:").and_then(|name| {
                // The run cache keys on the catalogue's static name.
                vbench::clip_names().find(|n| *n == name)
            });
            let records = match (&store_dir, clip_name) {
                (Some(dir), Some(name)) => {
                    // Store-backed path: both passes go through the same
                    // persistent layers vstress-repro uses.
                    let store = vstress::RunStore::open(dir).map_err(|e| e.to_string())?;
                    let cache = vstress::RunCache::with_store(std::sync::Arc::new(store));
                    let spec = vstress::workbench::RunSpec::standard(
                        name,
                        CodecId::SvtAv1,
                        EncoderParams::new(crf, preset),
                    );
                    let counting =
                        cache.run(&spec.clone().counting_only()).map_err(|e| e.to_string())?;
                    let total = counting.mix.total();
                    let window =
                        cache.branch_window(&spec, total / 2).map_err(|e| e.to_string())?;
                    let s = cache.stats();
                    eprintln!(
                        "store: {} hits, {} misses, {} quarantined",
                        s.store_hits, s.store_misses, s.store_quarantined
                    );
                    window.records.to_vec()
                }
                _ => {
                    if store_dir.is_some() {
                        eprintln!("note: --store needs a clip: input; tracing uncached");
                    }
                    let clip = load_clip(input)?;
                    let enc = Encoder::new(CodecId::SvtAv1, EncoderParams::new(crf, preset))
                        .map_err(|e| e.to_string())?;
                    let mut counter = vstress::trace::CountingProbe::new();
                    enc.encode(&clip, &mut counter).map_err(|e| e.to_string())?;
                    use vstress::trace::Probe;
                    let total = counter.retired();
                    let mut window = vstress::trace::BranchWindowProbe::mid_run(total, total / 2);
                    enc.encode(&clip, &mut window).map_err(|e| e.to_string())?;
                    window.into_records()
                }
            };
            let file = File::create(output).map_err(|e| e.to_string())?;
            vstress::trace::io::write_branch_trace(&records, BufWriter::new(file))
                .map_err(|e| e.to_string())?;
            eprintln!("captured {} branches -> {output}", records.len());
            Ok(())
        }
        Some("info") => {
            let input = args.get(1).ok_or("info needs an input")?;
            let data = std::fs::read(input).map_err(|e| format!("{input}: {e}"))?;
            let (h, payload) = vstress::codecs::bitstream::SequenceHeader::parse(&data)
                .map_err(|e| e.to_string())?;
            println!("codec:      {}", h.codec);
            println!("dimensions: {}x{} @ {} fps", h.width, h.height, h.fps);
            println!("frames:     {}", h.frame_count);
            println!("base q:     {}", h.qindex);
            println!(
                "tools:      sb{} min{} depth{} refs{}",
                h.superblock, h.min_block, h.max_depth, h.ref_frames
            );
            println!("payload:    {} bytes", payload.len());
            Ok(())
        }
        _ => Err("usage: vstress-transcode encode|decode|info ...".to_owned()),
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match cli::parse(&raw, FLAGS) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprint!("{}", cli::usage("vstress-transcode", "<encode|decode|info|trace> ...", FLAGS));
            return ExitCode::from(cli::USAGE_EXIT);
        }
    };
    match run(&parsed) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
