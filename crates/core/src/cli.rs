//! Shared command-line parsing for the `vstress-*` binaries.
//!
//! The binaries used to hand-roll `args.iter().position(..)` scans,
//! which silently accepted two classes of bad invocation:
//!
//! * a value flag followed by another flag or nothing — `--csv
//!   --threads 4` happily created a directory named `--threads`, and a
//!   trailing `--csv` was ignored;
//! * an unknown flag — the typo `--thread 4` (or `--paperr`) was
//!   skipped entirely, so the run silently did something other than
//!   what was asked.
//!
//! [`parse`] rejects both: every `--flag` must be declared in the
//! binary's [`FlagSpec`] table, and a flag declared as value-taking
//! must be followed by a value that is not itself `--`-prefixed.
//! Errors render with a usage block listing the valid flags, and the
//! binaries exit with code [`USAGE_EXIT`] (2, the conventional usage
//! error) so tests can tell parse failures from runtime failures.

/// Exit code for command-line usage errors (distinct from runtime
/// failures, which exit 1).
pub const USAGE_EXIT: u8 = 2;

/// One flag a binary accepts.
#[derive(Debug, Clone, Copy)]
pub struct FlagSpec {
    /// The flag including the leading dashes, e.g. `--store`.
    pub name: &'static str,
    /// Placeholder for the value in usage output (`""` for switches).
    pub value: &'static str,
    /// One-line help shown in the usage block.
    pub help: &'static str,
}

impl FlagSpec {
    /// A boolean switch (takes no value).
    pub const fn switch(name: &'static str, help: &'static str) -> Self {
        FlagSpec { name, value: "", help }
    }

    /// A flag taking one value (named `value` in usage output).
    pub const fn value(name: &'static str, value: &'static str, help: &'static str) -> Self {
        FlagSpec { name, value, help }
    }

    fn takes_value(&self) -> bool {
        !self.value.is_empty()
    }
}

/// A parse failure, rendered with enough context to fix the invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// A `--flag` not in the binary's spec table.
    Unknown {
        /// The offending argument.
        flag: String,
        /// Space-joined list of valid flags.
        valid: String,
    },
    /// A value flag at the end of the line, or followed by another
    /// `--`-prefixed token.
    MissingValue {
        /// The flag missing its value.
        flag: String,
        /// Its value placeholder (e.g. `DIR`).
        value: &'static str,
    },
    /// A value that parsed but failed the flag's validation.
    BadValue {
        /// The flag whose value was rejected.
        flag: String,
        /// What was wrong with it.
        detail: String,
    },
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Unknown { flag, valid } => {
                write!(f, "unknown flag: {flag}\nvalid flags: {valid}")
            }
            CliError::MissingValue { flag, value } => {
                write!(f, "{flag} needs a {value} argument (flag-like values are rejected)")
            }
            CliError::BadValue { flag, detail } => write!(f, "invalid value for {flag}: {detail}"),
        }
    }
}

impl std::error::Error for CliError {}

/// The parsed command line: flag values (first occurrence wins, like
/// the previous `position()`-based scans), switches seen, and the
/// non-flag positionals in order.
#[derive(Debug, Clone, Default)]
pub struct Parsed {
    values: Vec<(&'static str, String)>,
    switches: Vec<&'static str>,
    /// Arguments that are not flags (or flag values), in order.
    pub positionals: Vec<String>,
}

impl Parsed {
    /// Whether `name` appeared as a switch.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.contains(&name)
    }

    /// The value of `name`, if the flag appeared.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }

    /// The value of `name` run through `parse`, with parse failures
    /// reported as [`CliError::BadValue`].
    ///
    /// # Errors
    ///
    /// Returns [`CliError::BadValue`] when the value fails `parse`.
    pub fn parsed<T, E: std::fmt::Display>(
        &self,
        name: &str,
        parse: impl FnOnce(&str) -> Result<T, E>,
    ) -> Result<Option<T>, CliError> {
        match self.value(name) {
            None => Ok(None),
            Some(raw) => parse(raw).map(Some).map_err(|e| CliError::BadValue {
                flag: name.to_owned(),
                detail: format!("{raw:?}: {e}"),
            }),
        }
    }
}

/// Parses `args` (without the program name) against `flags`.
///
/// Value flags accept both spellings: `--threads 4` and `--threads=4`.
/// Only the *first* `=` splits, so values containing `=` survive
/// (`--csv out=dir` ≡ `--csv=out=dir`).
///
/// # Errors
///
/// Returns [`CliError::Unknown`] for any `--`-prefixed argument not in
/// `flags`, [`CliError::MissingValue`] for a value flag whose next
/// argument is absent or itself `--`-prefixed (an empty inline value,
/// `--threads=`, counts as missing), and [`CliError::BadValue`] for an
/// inline value on a switch (`--quick=1`).
pub fn parse(args: &[String], flags: &[FlagSpec]) -> Result<Parsed, CliError> {
    let mut out = Parsed::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if !arg.starts_with("--") {
            out.positionals.push(arg.clone());
            continue;
        }
        // `--flag=value` splits on the FIRST `=`; the flag table is
        // keyed by the part before it. The pre-split lookup used to
        // reject the whole token as unknown, so `--threads=4` exited 2
        // with a misleading "unknown flag" message.
        let (name, inline) = match arg.split_once('=') {
            Some((name, inline)) => (name, Some(inline)),
            None => (arg.as_str(), None),
        };
        let spec = flags.iter().find(|f| f.name == name).ok_or_else(|| CliError::Unknown {
            flag: arg.clone(),
            valid: flags.iter().map(|f| f.name).collect::<Vec<_>>().join(" "),
        })?;
        if !spec.takes_value() {
            if inline.is_some() {
                return Err(CliError::BadValue {
                    flag: spec.name.to_owned(),
                    detail: "switch takes no value".to_owned(),
                });
            }
            out.switches.push(spec.name);
            continue;
        }
        match inline {
            Some("") => {
                return Err(CliError::MissingValue {
                    flag: spec.name.to_owned(),
                    value: spec.value,
                })
            }
            Some(v) => out.values.push((spec.name, v.to_owned())),
            None => match it.next() {
                Some(v) if !v.starts_with("--") => out.values.push((spec.name, v.clone())),
                _ => {
                    return Err(CliError::MissingValue { flag: arg.clone(), value: spec.value });
                }
            },
        }
    }
    Ok(out)
}

/// Renders the usage block: one `usage:` line plus one line per flag.
pub fn usage(binary: &str, synopsis: &str, flags: &[FlagSpec]) -> String {
    use std::fmt::Write as _;
    let mut out = format!("usage: {binary} {synopsis}\n");
    for f in flags {
        let left =
            if f.takes_value() { format!("{} {}", f.name, f.value) } else { f.name.to_owned() };
        let _ = writeln!(out, "  {left:<18} {}", f.help);
    }
    out
}

/// Parses a strictly positive integer — the shared validator for
/// `--threads`-style flags.
///
/// # Errors
///
/// Returns a description when the value is not a positive integer.
pub fn positive_usize(raw: &str) -> Result<usize, String> {
    match raw.parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err("expected a positive integer".to_owned()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FLAGS: &[FlagSpec] = &[
        FlagSpec::switch("--quick", "quick profile"),
        FlagSpec::value("--csv", "DIR", "write CSVs into DIR"),
        FlagSpec::value("--threads", "N", "worker threads"),
    ];

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn happy_path_splits_flags_values_positionals() {
        let p = parse(&args(&["fig01", "--quick", "--csv", "out", "fig05"]), FLAGS).unwrap();
        assert!(p.switch("--quick"));
        assert_eq!(p.value("--csv"), Some("out"));
        assert_eq!(p.value("--threads"), None);
        assert_eq!(p.positionals, vec!["fig01", "fig05"]);
    }

    #[test]
    fn flag_like_value_is_rejected() {
        let e = parse(&args(&["--csv", "--threads", "4"]), FLAGS).unwrap_err();
        assert_eq!(e, CliError::MissingValue { flag: "--csv".into(), value: "DIR" });
    }

    #[test]
    fn trailing_value_flag_is_rejected() {
        let e = parse(&args(&["fig01", "--csv"]), FLAGS).unwrap_err();
        assert!(matches!(e, CliError::MissingValue { .. }));
    }

    #[test]
    fn unknown_flag_lists_valid_ones() {
        let e = parse(&args(&["--thread", "4"]), FLAGS).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("unknown flag: --thread"), "{msg}");
        assert!(msg.contains("--threads"), "{msg}");
    }

    #[test]
    fn equals_spelling_is_equivalent() {
        let p = parse(&args(&["--threads=4", "--csv=out", "fig01"]), FLAGS).unwrap();
        assert_eq!(p.value("--threads"), Some("4"));
        assert_eq!(p.value("--csv"), Some("out"));
        assert_eq!(p.positionals, vec!["fig01"]);
        // Only the first `=` splits; the rest belongs to the value.
        let p = parse(&args(&["--csv=a=b"]), FLAGS).unwrap();
        assert_eq!(p.value("--csv"), Some("a=b"));
        // An inline value may itself start with `--` (explicitly
        // attached, unlike the separate-token case).
        let p = parse(&args(&["--csv=--weird"]), FLAGS).unwrap();
        assert_eq!(p.value("--csv"), Some("--weird"));
    }

    #[test]
    fn empty_inline_value_is_missing() {
        let e = parse(&args(&["--threads="]), FLAGS).unwrap_err();
        assert_eq!(e, CliError::MissingValue { flag: "--threads".into(), value: "N" });
    }

    #[test]
    fn inline_value_on_a_switch_is_rejected() {
        let e = parse(&args(&["--quick=1"]), FLAGS).unwrap_err();
        assert!(matches!(e, CliError::BadValue { ref flag, .. } if flag == "--quick"), "{e:?}");
    }

    #[test]
    fn unknown_flag_with_equals_reports_the_full_token() {
        let e = parse(&args(&["--thread=4"]), FLAGS).unwrap_err();
        assert!(e.to_string().contains("unknown flag: --thread=4"), "{e}");
    }

    #[test]
    fn first_occurrence_wins() {
        let p = parse(&args(&["--csv", "a", "--csv", "b"]), FLAGS).unwrap();
        assert_eq!(p.value("--csv"), Some("a"));
    }

    #[test]
    fn parsed_validates() {
        let p = parse(&args(&["--threads", "4"]), FLAGS).unwrap();
        assert_eq!(p.parsed("--threads", positive_usize).unwrap(), Some(4));
        let p = parse(&args(&["--threads", "0"]), FLAGS).unwrap();
        assert!(matches!(p.parsed("--threads", positive_usize), Err(CliError::BadValue { .. })));
        let p = parse(&args(&["--threads", "x"]), FLAGS).unwrap();
        assert!(p.parsed("--threads", positive_usize).is_err());
    }

    #[test]
    fn usage_mentions_every_flag() {
        let u = usage("vstress-x", "[flags]", FLAGS);
        for f in FLAGS {
            assert!(u.contains(f.name), "{u}");
        }
    }
}
