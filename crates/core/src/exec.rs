//! Parallel experiment execution and the characterization run-cache.
//!
//! Every figure/table runner decomposes into independent
//! [`RunSpec`]s, so the whole reproduction is an embarrassingly
//! parallel batch — the same structure the paper's datacenter framing
//! assumes. [`run_all`] fans specs out over the
//! [`run_ordered`](vstress_codecs::batch::run_ordered) work queue, and
//! [`RunCache`] memoizes three layers of shared work:
//!
//! * **runs** — [`CharacterizationRun`]s keyed by everything that
//!   determines them (clip, codec, params, fidelity, cache divisor,
//!   pipeline on/off). Figures that share quality points (Figs. 4–7
//!   slice one sweep; Fig. 1/2a/2b share encodes; Table 2 shares the
//!   CRF-63 encodes with Fig. 8) never recompute an encode.
//! * **clips** — synthesized vbench clips keyed by (name, fidelity).
//! * **branch windows** — the CBP study's captured mid-run traces,
//!   keyed additionally by the window length.
//!
//! Parallelism never changes results: each worker owns its probes and
//! `CoreModel`, and every probed buffer carries a synthetic
//! page-aligned address (see `vstress_trace::probe_addr`), so a spec's
//! characterization is a pure function of the spec. The
//! `parallel_equivalence` integration test pins this down.

use crate::workbench::{characterize_clip, CharacterizationRun, RunSpec, WorkbenchError};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use vstress_codecs::batch::run_ordered;
use vstress_codecs::{CodecId, Encoder, EncoderParams};
use vstress_trace::{BranchRecord, BranchWindowProbe};
use vstress_video::vbench::FidelityConfig;
use vstress_video::Clip;

/// The hashable projection of [`FidelityConfig`].
type FidelityKey = (usize, usize, u64);

fn fidelity_key(f: &FidelityConfig) -> FidelityKey {
    (f.dimension_divisor, f.frame_count, f.seed)
}

/// Everything that determines a [`CharacterizationRun`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct RunKey {
    clip: &'static str,
    codec: CodecId,
    params: EncoderParams,
    fidelity: FidelityKey,
    cache_divisor: usize,
    model_pipeline: bool,
}

impl RunKey {
    fn of(spec: &RunSpec) -> Self {
        RunKey {
            clip: spec.clip,
            codec: spec.codec,
            params: spec.params,
            fidelity: fidelity_key(&spec.fidelity),
            cache_divisor: spec.cache_divisor,
            model_pipeline: spec.model_pipeline,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ClipKey {
    clip: &'static str,
    fidelity: FidelityKey,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct WindowKey {
    clip: &'static str,
    codec: CodecId,
    params: EncoderParams,
    fidelity: FidelityKey,
    window: u64,
}

/// A captured mid-run branch window: the records plus the number of
/// instructions the window actually covered.
pub type BranchWindow = (Vec<BranchRecord>, u64);

/// One cache entry: a per-key lock around the (eventually) computed
/// value. A racer for an in-flight key blocks on the slot lock instead
/// of recomputing; distinct keys never contend beyond the brief map
/// lookup.
type Slot<V> = Arc<Mutex<Option<Arc<V>>>>;

/// Looks up `key`, computing the value at most once per key. Failed
/// computes leave the slot empty, so a later caller retries.
fn memo<K: Eq + Hash, V>(
    map: &Mutex<HashMap<K, Slot<V>>>,
    hits: &AtomicU64,
    misses: &AtomicU64,
    key: K,
    compute: impl FnOnce() -> Result<V, WorkbenchError>,
) -> Result<Arc<V>, WorkbenchError> {
    let slot = Arc::clone(map.lock().unwrap().entry(key).or_default());
    let mut guard = slot.lock().unwrap();
    if let Some(v) = guard.as_ref() {
        hits.fetch_add(1, Ordering::Relaxed);
        return Ok(Arc::clone(v));
    }
    misses.fetch_add(1, Ordering::Relaxed);
    let v = Arc::new(compute()?);
    *guard = Some(Arc::clone(&v));
    Ok(v)
}

/// Hit/miss counters for the three cache layers (test observability —
/// a hit proves no re-encode happened).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunCacheStats {
    /// Characterization-run cache hits.
    pub run_hits: u64,
    /// Characterization-run cache misses (encodes performed).
    pub run_misses: u64,
    /// Clip-synthesis cache hits.
    pub clip_hits: u64,
    /// Clip-synthesis cache misses (clips synthesized).
    pub clip_misses: u64,
    /// Branch-window cache hits.
    pub window_hits: u64,
    /// Branch-window cache misses (window captures performed).
    pub window_misses: u64,
}

/// Memoizes characterization runs, synthesized clips, and CBP branch
/// windows. Thread-safe; share one instance per process via `Arc` (the
/// [`ExperimentConfig`](crate::experiments::ExperimentConfig) embeds
/// one and `Clone` shares it).
#[derive(Default)]
pub struct RunCache {
    runs: Mutex<HashMap<RunKey, Slot<CharacterizationRun>>>,
    clips: Mutex<HashMap<ClipKey, Slot<Clip>>>,
    windows: Mutex<HashMap<WindowKey, Slot<BranchWindow>>>,
    run_hits: AtomicU64,
    run_misses: AtomicU64,
    clip_hits: AtomicU64,
    clip_misses: AtomicU64,
    window_hits: AtomicU64,
    window_misses: AtomicU64,
}

impl std::fmt::Debug for RunCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunCache").field("stats", &self.stats()).finish()
    }
}

impl RunCache {
    /// A fresh, empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> RunCacheStats {
        RunCacheStats {
            run_hits: self.run_hits.load(Ordering::Relaxed),
            run_misses: self.run_misses.load(Ordering::Relaxed),
            clip_hits: self.clip_hits.load(Ordering::Relaxed),
            clip_misses: self.clip_misses.load(Ordering::Relaxed),
            window_hits: self.window_hits.load(Ordering::Relaxed),
            window_misses: self.window_misses.load(Ordering::Relaxed),
        }
    }

    /// The synthesized clip for `(name, fidelity)`, computing it on the
    /// first request.
    ///
    /// # Errors
    ///
    /// Returns [`WorkbenchError::Video`] for unknown clip names.
    pub fn clip(
        &self,
        name: &'static str,
        fidelity: &FidelityConfig,
    ) -> Result<Arc<Clip>, WorkbenchError> {
        let key = ClipKey { clip: name, fidelity: fidelity_key(fidelity) };
        memo(&self.clips, &self.clip_hits, &self.clip_misses, key, || {
            Ok(vstress_video::vbench::clip(name)?.synthesize(fidelity))
        })
    }

    /// The characterization of `spec`, encoding only on the first
    /// request for its key.
    ///
    /// # Errors
    ///
    /// Propagates [`WorkbenchError`] from clip synthesis or the encode.
    pub fn run(&self, spec: &RunSpec) -> Result<Arc<CharacterizationRun>, WorkbenchError> {
        let key = RunKey::of(spec);
        memo(&self.runs, &self.run_hits, &self.run_misses, key, || {
            let clip = self.clip(spec.clip, &spec.fidelity)?;
            characterize_clip(spec, &clip)
        })
    }

    /// The CBP study's mid-run branch window for one encode
    /// configuration: a counting pre-pass sizes the run (shared with
    /// any counting-only characterization of the same spec via the run
    /// cache), then a second encode captures a centered window of at
    /// most `window` instructions.
    ///
    /// # Errors
    ///
    /// Propagates [`WorkbenchError`] from clip synthesis or either
    /// encode pass.
    pub fn branch_window(
        &self,
        spec: &RunSpec,
        window: u64,
    ) -> Result<Arc<BranchWindow>, WorkbenchError> {
        let key = WindowKey {
            clip: spec.clip,
            codec: spec.codec,
            params: spec.params,
            fidelity: fidelity_key(&spec.fidelity),
            window,
        };
        memo(&self.windows, &self.window_hits, &self.window_misses, key, || {
            let clip = self.clip(spec.clip, &spec.fidelity)?;
            // Pass 1 — total instruction count, via the run cache: a
            // counting probe's retired() equals its mix total, so a
            // cached counting-only run is exactly the old pre-pass.
            let counting = self.run(&spec.clone().counting_only())?;
            let total = counting.mix.total();
            // Pass 2 — capture the centered window.
            let encoder = Encoder::new(spec.codec, spec.params)?;
            let mut probe = BranchWindowProbe::mid_run(total, window.min(total));
            encoder.encode(&clip, &mut probe)?;
            let captured = probe.window_retired().max(1);
            Ok((probe.into_records(), captured))
        })
    }
}

/// Characterizes every spec, in input order, on up to `threads` worker
/// threads, memoizing through `cache`.
///
/// Results are bit-identical to a serial `characterize` loop at any
/// thread count (each worker owns its probes and core model).
///
/// # Errors
///
/// Returns the first-by-index [`WorkbenchError`]; workers stop claiming
/// specs once one fails.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn run_all(
    cache: &RunCache,
    threads: usize,
    specs: &[RunSpec],
) -> Result<Vec<Arc<CharacterizationRun>>, WorkbenchError> {
    run_ordered(specs.len(), threads, |i| cache.run(&specs[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> RunSpec {
        RunSpec::quick("cat", CodecId::X264, EncoderParams::new(30, 5))
    }

    #[test]
    fn run_cache_hits_skip_the_encode() {
        let cache = RunCache::new();
        let a = cache.run(&spec()).unwrap();
        let b = cache.run(&spec()).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "a hit must return the cached run");
        let s = cache.stats();
        assert_eq!((s.run_hits, s.run_misses), (1, 1));
        assert_eq!((s.clip_hits, s.clip_misses), (0, 1));
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = RunCache::new();
        let pipeline = cache.run(&spec()).unwrap();
        let counting = cache.run(&spec().counting_only()).unwrap();
        assert!(pipeline.core.instructions > 0);
        assert_eq!(counting.core.instructions, 0);
        assert_eq!(cache.stats().run_misses, 2);
    }

    #[test]
    fn run_all_matches_serial_and_dedupes() {
        let specs = vec![spec(), spec().counting_only(), spec()];
        let cache = RunCache::new();
        let runs = run_all(&cache, 2, &specs).unwrap();
        assert_eq!(runs.len(), 3);
        let serial = crate::workbench::characterize(&specs[0]).unwrap();
        assert_eq!(runs[0].core.instructions, serial.core.instructions);
        assert_eq!(runs[0].total_bits, serial.total_bits);
        // Specs 0 and 2 share a key: at most 2 encodes happened.
        assert_eq!(cache.stats().run_misses, 2);
    }
}
