//! `vstress-serve` — a long-running encode service under deterministic
//! synthetic traffic.
//!
//! The batch workbench answers "what does one encode look like?"; this
//! module answers the datacenter question the paper opens with — what
//! happens when encode jobs *arrive* rather than being swept. It runs a
//! staged pipeline:
//!
//! ```text
//!   traffic ──▶ [ingress queue] ──▶ encode worker pool ──▶
//!           ──▶ [characterized queue] ──▶ post stage ──▶
//!           ──▶ [egress queue] ──▶ collector / metrics
//! ```
//!
//! Every stage boundary is a [`queue::Bounded`] MPMC queue, so memory
//! is bounded end to end: when encode workers fall behind, the ingress
//! queue fills and the configured [`IngressPolicy`] either *blocks* the
//! arrival thread (closed-loop traffic) or *rejects* the job with a
//! reason (open-loop overload shedding). Interior stages always block —
//! overload policy is an edge decision, a slow interior stage is just
//! backpressure.
//!
//! Shutdown is a drain cascade: the ingress thread stops submitting
//! (traffic exhausted, or the shutdown flag was raised by a signal /
//! stdin EOF) and closes the ingress queue; the last encode worker to
//! exit closes the characterized queue; the post stage closes egress;
//! the collector returns. Queued work is always finished, never
//! dropped — "graceful drain-then-shutdown".
//!
//! Encode workers run jobs through the same [`RunCache`] /
//! [`RunStore`](crate::RunStore) layers as `vstress-repro`, so repeated
//! job keys (the mix has many) cost one encode, and a `--store` warmed
//! by a previous run serves the whole job list without encoding at all.
//!
//! Determinism: per-job *results* (bits, PSNR, instructions, modeled
//! service time) are pure functions of the job spec, so the job-level
//! summary ([`ServeReport::job_summary`]) is byte-identical for a fixed
//! traffic seed at any worker count, queue capacity, or machine load.
//! Wall-clock observations (sojourn latency, throughput, queue
//! high-water marks) are real measurements of the live pipeline and are
//! reported separately ([`ServeReport::wall_summary`]).

pub mod metrics;
pub mod queue;
pub mod traffic;

pub use metrics::LatencyStats;
pub use queue::{Bounded, PushError, QueueStats};
pub use traffic::{generate, JobSpec, TrafficConfig};

use crate::exec::{run_all, RunCache};
use crate::workbench::{CharacterizationRun, RunSpec, WorkbenchError};
use std::collections::HashSet;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What ingress does with an arrival when the ingress queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngressPolicy {
    /// Block the arrival thread until space frees up (closed-loop
    /// traffic; nothing is ever shed).
    Block,
    /// Reject the job immediately with a reason (open-loop overload
    /// shedding; memory stays bounded no matter the offered rate).
    Reject,
}

/// Configuration of the serve pipeline.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Encode worker threads (≥ 1).
    pub workers: usize,
    /// Ingress queue capacity — the overload-shedding bound.
    pub ingress_capacity: usize,
    /// Capacity of the interior (characterized, egress) queues.
    pub stage_capacity: usize,
    /// Full-queue policy at the ingress edge.
    pub ingress: IngressPolicy,
    /// Real-time pacing factor against the virtual arrival timestamps:
    /// `0.0` injects as fast as ingress accepts (the deterministic CI
    /// mode), `1.0` paces 1:1, `2.0` replays at double speed.
    pub pace: f64,
    /// Shared run cache (attach a store via
    /// [`RunCache::with_store`] for cross-process reuse).
    pub cache: Arc<RunCache>,
    /// Tile workers per encode ([`RunSpec::tile_workers`]): how many
    /// threads each encode worker spends on the intra-encode
    /// tile/wavefront decomposition. Results are byte-identical at any
    /// value (the probe-merge contract), so this only shifts wall-clock
    /// parallelism from across-job to within-job.
    pub tile_workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: crate::exec::default_threads(),
            ingress_capacity: 16,
            stage_capacity: 16,
            ingress: IngressPolicy::Block,
            pace: 0.0,
            cache: Arc::new(RunCache::new()),
            tile_workers: 1,
        }
    }
}

/// A completed job with its deterministic results and wall timing.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job as generated.
    pub job: JobSpec,
    /// Encoded bitstream size in bits.
    pub bits: u64,
    /// Mean luma PSNR of the reconstruction.
    pub psnr: f64,
    /// Retired instructions (the paper's cost currency).
    pub instructions: u64,
    /// Modeled service time in milliseconds (pipeline-model seconds for
    /// the job's instruction stream — deterministic).
    pub modeled_ms: f64,
    /// Measured sojourn time in milliseconds (ingress enqueue → post
    /// stage) — wall clock, not deterministic.
    pub wall_ms: f64,
}

/// A job whose encode failed (deterministic: the error is a function of
/// the spec).
#[derive(Debug, Clone)]
pub struct JobFailure {
    /// The job as generated.
    pub job: JobSpec,
    /// The encode/characterization error.
    pub error: String,
}

/// A job shed at the ingress edge.
#[derive(Debug, Clone)]
pub struct Rejection {
    /// The job as generated.
    pub job: JobSpec,
    /// Why it was shed, e.g. `ingress queue full (capacity 16)`.
    pub reason: String,
}

/// Occupancy gauges for the three stage-boundary queues.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageGauges {
    /// Traffic → encode workers.
    pub ingress: QueueStats,
    /// Encode workers → post stage.
    pub characterized: QueueStats,
    /// Post stage → collector.
    pub egress: QueueStats,
}

/// Everything a serve run produced.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Jobs offered by the traffic schedule.
    pub offered: usize,
    /// Completed jobs, sorted by job id.
    pub completed: Vec<JobOutcome>,
    /// Failed jobs, sorted by job id.
    pub failed: Vec<JobFailure>,
    /// Jobs rejected at ingress (arrival order).
    pub rejected: Vec<Rejection>,
    /// Jobs never submitted because shutdown was requested first
    /// (arrival order).
    pub shed_on_shutdown: Vec<JobSpec>,
    /// Final queue gauges.
    pub gauges: StageGauges,
    /// Wall-clock duration of the whole run in seconds.
    pub wall_seconds: f64,
    /// Whether every accepted job was accounted for and all queues
    /// drained to empty — the graceful-shutdown invariant.
    pub drained: bool,
}

impl ServeReport {
    /// The deterministic job-level summary (stdout): per-job results
    /// and modeled-service-time percentiles. Byte-identical for a fixed
    /// traffic seed under the default (`Block` + unpaced) policy,
    /// regardless of worker count.
    pub fn job_summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "vstress-serve summary v1");
        let _ = writeln!(out, "offered {}", self.offered);
        let accepted = self.offered - self.rejected.len() - self.shed_on_shutdown.len();
        let _ = writeln!(out, "accepted {accepted}");
        let _ = writeln!(out, "rejected {}", self.rejected.len());
        let _ = writeln!(out, "shed {}", self.shed_on_shutdown.len());
        let _ = writeln!(out, "completed {}", self.completed.len());
        let _ = writeln!(out, "failed {}", self.failed.len());
        for o in &self.completed {
            let _ = writeln!(
                out,
                "job id={} {} bits={} psnr={:.2} instr={} modeled_ms={:.3}",
                o.job.id,
                o.job.describe(),
                o.bits,
                o.psnr,
                o.instructions,
                o.modeled_ms
            );
        }
        for f in &self.failed {
            let _ = writeln!(out, "failure id={} {} error={}", f.job.id, f.job.describe(), f.error);
        }
        for r in &self.rejected {
            let _ =
                writeln!(out, "reject id={} {} reason={}", r.job.id, r.job.describe(), r.reason);
        }
        let modeled: Vec<f64> = self.completed.iter().map(|o| o.modeled_ms).collect();
        if let Some(s) = LatencyStats::from_sample(&modeled) {
            let _ = writeln!(out, "modeled_service_ms {}", s.render_ms());
        }
        let _ = writeln!(out, "end summary");
        out
    }

    /// The wall-clock metrics (stderr): throughput, measured sojourn
    /// latency percentiles, and per-stage queue gauges. Real
    /// measurements — varies run to run.
    pub fn wall_summary(&self) -> String {
        let mut out = String::new();
        let jobs_per_s = if self.wall_seconds > 0.0 {
            self.completed.len() as f64 / self.wall_seconds
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "wall {:.3}s, {:.1} jobs/s, drained={}",
            self.wall_seconds, jobs_per_s, self.drained
        );
        let walls: Vec<f64> = self.completed.iter().map(|o| o.wall_ms).collect();
        if let Some(s) = LatencyStats::from_sample(&walls) {
            let _ = writeln!(out, "latency_wall_ms {}", s.render_ms());
        }
        for (name, q) in [
            ("ingress", &self.gauges.ingress),
            ("characterized", &self.gauges.characterized),
            ("egress", &self.gauges.egress),
        ] {
            let _ = writeln!(
                out,
                "queue {name} cap={} max_depth={} pushed={} popped={} rejected={} depth={}",
                q.capacity, q.max_depth, q.pushed, q.popped, q.rejected, q.depth
            );
        }
        out
    }
}

/// The unique [`RunSpec`]s behind a job list, first-seen order — what a
/// prewarm pass needs to encode so serving is pure cache/store hits.
pub fn unique_specs(jobs: &[JobSpec]) -> Vec<RunSpec> {
    let mut seen = HashSet::new();
    jobs.iter().filter(|j| seen.insert(j.work_key())).map(JobSpec::run_spec).collect()
}

/// Encodes every unique spec of `jobs` through the batch executor
/// ([`run_all`]) so a subsequent [`serve`] over the same cache performs
/// zero encodes. Returns the number of unique specs warmed.
///
/// # Errors
///
/// Propagates the first-by-index [`WorkbenchError`].
pub fn prewarm(cfg: &ServeConfig, jobs: &[JobSpec]) -> Result<usize, WorkbenchError> {
    let mut specs = unique_specs(jobs);
    for spec in &mut specs {
        spec.tile_workers = cfg.tile_workers.max(1);
    }
    run_all(&cfg.cache, cfg.workers, &specs)?;
    Ok(specs.len())
}

/// A job travelling through the pipeline with its admission timestamp.
struct Ticket {
    job: JobSpec,
    enqueued: Instant,
}

/// A worker's output: the job plus its (possibly failed) run.
struct Encoded {
    ticket: Ticket,
    result: Result<Arc<CharacterizationRun>, String>,
}

/// A post-stage record ready for collection.
enum Done {
    Ok(JobOutcome),
    Failed(JobFailure),
}

/// Closes a queue when dropped. Each stage holds one for its downstream
/// queue so the drain cascade survives a panicking stage: unwinding
/// still closes the queue and wakes the consumers, turning a would-be
/// deadlock into a propagated panic at scope exit.
struct CloseOnDrop<'a, T>(&'a Bounded<T>);

impl<T> Drop for CloseOnDrop<'_, T> {
    fn drop(&mut self) {
        self.0.close();
    }
}

/// The worker-pool variant: the last worker out — by return *or* by
/// unwind — closes the downstream queue.
struct WorkerExit<'a, T> {
    live: &'a AtomicUsize,
    downstream: &'a Bounded<T>,
}

impl<T> Drop for WorkerExit<'_, T> {
    fn drop(&mut self) {
        if self.live.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.downstream.close();
        }
    }
}

/// Sleeps until the pacing target for `arrival_us`, in short slices so
/// a shutdown request interrupts promptly. Returns `false` if shutdown
/// was requested while waiting.
fn pace_until(start: Instant, arrival_us: u64, pace: f64, shutdown: &AtomicBool) -> bool {
    if pace <= 0.0 {
        return !shutdown.load(Ordering::Acquire);
    }
    let target = Duration::from_micros((arrival_us as f64 / pace) as u64);
    loop {
        if shutdown.load(Ordering::Acquire) {
            return false;
        }
        let elapsed = start.elapsed();
        if elapsed >= target {
            return true;
        }
        std::thread::sleep((target - elapsed).min(Duration::from_millis(20)));
    }
}

/// Runs the staged pipeline over `jobs` until the traffic is exhausted
/// or `shutdown` is raised, then drains and returns the report (see
/// module docs for the stage/shutdown design).
///
/// # Panics
///
/// Panics if `cfg.workers` is zero or an encode worker panics.
pub fn serve(cfg: &ServeConfig, jobs: &[JobSpec], shutdown: &AtomicBool) -> ServeReport {
    assert!(cfg.workers > 0, "need at least one encode worker");
    let start = Instant::now();
    let ingress: Bounded<Ticket> = Bounded::new(cfg.ingress_capacity);
    let characterized: Bounded<Encoded> = Bounded::new(cfg.stage_capacity);
    let egress: Bounded<Done> = Bounded::new(cfg.stage_capacity);
    let live_workers = AtomicUsize::new(cfg.workers);

    let (completed, failed, rejected, shed) = std::thread::scope(|s| {
        // Ingress: replay the arrival schedule against the bounded
        // queue, shedding per policy; close the queue when done.
        let ingress_handle = s.spawn(|| {
            let _close = CloseOnDrop(&ingress);
            let mut rejected: Vec<Rejection> = Vec::new();
            let mut shed: Vec<JobSpec> = Vec::new();
            for job in jobs {
                if !pace_until(start, job.arrival_us, cfg.pace, shutdown) {
                    shed.push(*job);
                    continue;
                }
                let ticket = Ticket { job: *job, enqueued: Instant::now() };
                match cfg.ingress {
                    IngressPolicy::Block => {
                        if let Err(t) = ingress.push(ticket) {
                            shed.push(t.job);
                        }
                    }
                    IngressPolicy::Reject => match ingress.try_push(ticket) {
                        Ok(()) => {}
                        Err(PushError::Full(t)) => rejected.push(Rejection {
                            job: t.job,
                            reason: format!(
                                "ingress queue full (capacity {})",
                                cfg.ingress_capacity
                            ),
                        }),
                        Err(PushError::Closed(t)) => shed.push(t.job),
                    },
                }
            }
            (rejected, shed)
        });

        // Encode worker pool: the service's hot stage. The last worker
        // out (return or unwind) closes the downstream queue.
        for _ in 0..cfg.workers {
            s.spawn(|| {
                let _exit = WorkerExit { live: &live_workers, downstream: &characterized };
                while let Some(ticket) = ingress.pop() {
                    let mut spec = ticket.job.run_spec();
                    spec.tile_workers = cfg.tile_workers.max(1);
                    let result = cfg.cache.run(&spec).map_err(|e| e.to_string());
                    if characterized.push(Encoded { ticket, result }).is_err() {
                        break; // downstream shut first; nothing to do
                    }
                }
            });
        }

        // Post stage: turn runs into service-level records.
        s.spawn(|| {
            let _close = CloseOnDrop(&egress);
            while let Some(enc) = characterized.pop() {
                let wall_ms = enc.ticket.enqueued.elapsed().as_secs_f64() * 1e3;
                let done = match enc.result {
                    Ok(run) => Done::Ok(JobOutcome {
                        job: enc.ticket.job,
                        bits: run.total_bits,
                        psnr: run.mean_psnr,
                        instructions: run.mix.total(),
                        modeled_ms: run.seconds * 1e3,
                        wall_ms,
                    }),
                    Err(error) => Done::Failed(JobFailure { job: enc.ticket.job, error }),
                };
                if egress.push(done).is_err() {
                    break;
                }
            }
        });

        // Collector (this thread): drain egress until the cascade ends.
        let mut completed: Vec<JobOutcome> = Vec::new();
        let mut failed: Vec<JobFailure> = Vec::new();
        while let Some(done) = egress.pop() {
            match done {
                Done::Ok(o) => completed.push(o),
                Done::Failed(f) => failed.push(f),
            }
        }
        let (rejected, shed) = ingress_handle.join().expect("ingress thread");
        (completed, failed, rejected, shed)
    });

    // Completion order is racy; job id order is canonical.
    let mut completed = completed;
    completed.sort_by_key(|o| o.job.id);
    let mut failed = failed;
    failed.sort_by_key(|f| f.job.id);

    let gauges = StageGauges {
        ingress: ingress.stats(),
        characterized: characterized.stats(),
        egress: egress.stats(),
    };
    let accounted = completed.len() + failed.len() + rejected.len() + shed.len();
    let drained = accounted == jobs.len()
        && gauges.ingress.depth == 0
        && gauges.characterized.depth == 0
        && gauges.egress.depth == 0;
    ServeReport {
        offered: jobs.len(),
        completed,
        failed,
        rejected,
        shed_on_shutdown: shed,
        gauges,
        wall_seconds: start.elapsed().as_secs_f64(),
        drained,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_jobs(seed: u64, n: usize) -> Vec<JobSpec> {
        // Tiny frame counts keep unit tests fast; integration tests
        // exercise the real quick profile.
        let mut cfg = TrafficConfig::quick(seed, n);
        cfg.frame_count = 2;
        cfg.ladder = vec![(32, 1)];
        generate(&cfg)
    }

    #[test]
    fn serve_completes_everything_under_block_policy() {
        let jobs = quick_jobs(1, 8);
        let cfg = ServeConfig { workers: 2, ..ServeConfig::default() };
        let report = serve(&cfg, &jobs, &AtomicBool::new(false));
        assert_eq!(report.completed.len(), 8);
        assert!(report.failed.is_empty() && report.rejected.is_empty());
        assert!(report.drained, "all queues must drain");
        // Canonical ordering by id.
        let ids: Vec<u64> = report.completed.iter().map(|o| o.job.id).collect();
        assert_eq!(ids, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn job_summary_is_worker_count_invariant() {
        let jobs = quick_jobs(5, 10);
        let one = serve(
            &ServeConfig { workers: 1, ..ServeConfig::default() },
            &jobs,
            &AtomicBool::new(false),
        );
        let four = serve(
            &ServeConfig { workers: 4, ingress_capacity: 3, ..ServeConfig::default() },
            &jobs,
            &AtomicBool::new(false),
        );
        assert_eq!(one.job_summary(), four.job_summary());
        // Splitting each encode across tile workers must not change a
        // byte either — the probe-merge contract, end to end.
        let tiled = serve(
            &ServeConfig { workers: 2, tile_workers: 3, ..ServeConfig::default() },
            &jobs,
            &AtomicBool::new(false),
        );
        assert_eq!(one.job_summary(), tiled.job_summary());
    }

    #[test]
    #[should_panic]
    fn panicking_worker_does_not_deadlock_the_drain() {
        // Regression: an encode worker that panics (here: a divisor the
        // scaled cache hierarchy rejects, injected past `generate`'s
        // validation) used to skip the last-worker countdown, leaving
        // `characterized` open and the post/collector stages blocked
        // forever. The drop guards must instead complete the cascade
        // and let the scope propagate the panic out of `serve`.
        let mut jobs = quick_jobs(1, 3);
        jobs[1].divisor = 24;
        let cfg = ServeConfig { workers: 2, ..ServeConfig::default() };
        let _ = serve(&cfg, &jobs, &AtomicBool::new(false));
    }

    #[test]
    fn unique_specs_dedup_repeats() {
        let jobs = quick_jobs(9, 64);
        let unique = unique_specs(&jobs);
        assert!(unique.len() < jobs.len(), "the mix must repeat keys over 64 draws");
        assert!(!unique.is_empty());
    }

    #[test]
    fn prewarmed_serve_does_zero_encodes() {
        let jobs = quick_jobs(13, 12);
        let cfg = ServeConfig { workers: 2, ..ServeConfig::default() };
        let warmed = prewarm(&cfg, &jobs).unwrap();
        assert!(warmed >= 1);
        let misses_after_warm = cfg.cache.stats().run_misses;
        let report = serve(&cfg, &jobs, &AtomicBool::new(false));
        assert_eq!(report.completed.len(), 12);
        assert_eq!(
            cfg.cache.stats().run_misses,
            misses_after_warm,
            "serving after prewarm must be pure cache hits"
        );
    }
}
