//! Service-level metrics: latency percentiles, throughput, gauges.
//!
//! Two classes of numbers come out of a serve run and they must not be
//! mixed, because the repo's contract is a byte-comparable stdout:
//!
//! * **Deterministic** — per-job encode results (bits, PSNR, retired
//!   instructions) and the *modeled* service time (the pipeline model's
//!   seconds for the job's instruction stream). Pure functions of the
//!   job spec; identical for a fixed traffic seed on every run and at
//!   every worker count. These back the job-level summary on stdout.
//! * **Wall-clock** — measured sojourn latency (ingress-enqueue →
//!   egress), throughput, and queue-depth high-water marks. Genuinely
//!   racy (they are the point of running a live pipeline), so they are
//!   reported on stderr where runs are not diffed.
//!
//! Percentiles use the nearest-rank definition (ceil(p·n)-th of the
//!   sorted sample) — exact, allocation-light, and stable for the small
//!   samples a smoke run produces.

/// Nearest-rank percentile of an unsorted sample; `None` when empty.
///
/// `p` is a fraction in `(0, 1]` — `0.5` is the median.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    assert!(p > 0.0 && p <= 1.0, "percentile fraction out of range: {p}");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = (p * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.clamp(1, sorted.len()) - 1])
}

/// The p50/p95/p99 + mean + max digest of one latency distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Maximum.
    pub max: f64,
}

impl LatencyStats {
    /// Digest of `values`; `None` when the sample is empty.
    pub fn from_sample(values: &[f64]) -> Option<Self> {
        let n = values.len();
        if n == 0 {
            return None;
        }
        Some(LatencyStats {
            p50: percentile(values, 0.50).unwrap(),
            p95: percentile(values, 0.95).unwrap(),
            p99: percentile(values, 0.99).unwrap(),
            mean: values.iter().sum::<f64>() / n as f64,
            max: values.iter().fold(f64::MIN, |a, &b| a.max(b)),
        })
    }

    /// The stable one-line rendering used by both summary channels,
    /// e.g. `p50=1.234 p95=2.345 p99=2.345 mean=1.500 max=2.345`.
    pub fn render_ms(&self) -> String {
        format!(
            "p50={:.3} p95={:.3} p99={:.3} mean={:.3} max={:.3}",
            self.p50, self.p95, self.p99, self.mean, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.50), Some(50.0));
        assert_eq!(percentile(&v, 0.95), Some(95.0));
        assert_eq!(percentile(&v, 0.99), Some(99.0));
        assert_eq!(percentile(&v, 1.0), Some(100.0));
        // Unsorted input is handled.
        let v = [3.0, 1.0, 2.0];
        assert_eq!(percentile(&v, 0.5), Some(2.0));
        assert_eq!(percentile(&v, 0.01), Some(1.0));
        let empty: &[f64] = &[];
        assert_eq!(percentile(empty, 0.5), None);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let s = LatencyStats::from_sample(&[7.5]).unwrap();
        assert_eq!((s.p50, s.p95, s.p99, s.mean, s.max), (7.5, 7.5, 7.5, 7.5, 7.5));
    }

    #[test]
    fn render_is_stable() {
        let s = LatencyStats::from_sample(&[1.0, 2.0, 4.0, 8.0]).unwrap();
        assert_eq!(s.render_ms(), "p50=2.000 p95=8.000 p99=8.000 mean=3.750 max=8.000");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_percentile_panics() {
        let _ = percentile(&[1.0], 0.0);
    }
}
