//! Bounded MPMC queues with explicit backpressure.
//!
//! Every stage boundary in the serve pipeline is a [`Bounded`] queue:
//! a `Mutex<VecDeque>` plus two condvars, a hard capacity, and a
//! closed flag for shutdown cascades. The interesting policy decision —
//! *block* the producer or *reject* the item when the queue is full —
//! is made by the caller by choosing [`Bounded::push`] versus
//! [`Bounded::try_push`]; the queue itself only enforces the bound and
//! keeps occupancy accounting (current depth, high-water mark,
//! cumulative push/pop/reject counts) that the metrics layer reports
//! per stage.
//!
//! Closing is one-way and idempotent: after [`Bounded::close`],
//! producers get their item back and consumers drain what remains, so
//! a stage can shut its successor down simply by closing the queue
//! between them once its own input is exhausted.
//!
//! Lock poisoning is deliberately shrugged off: a stage thread that
//! panics while holding the mutex poisons it, but the queue state it
//! guards (a `VecDeque` plus counters) is valid after any partial
//! update, and the serve pipeline's drain cascade *relies* on the
//! surviving stages still being able to push/pop/close during unwind.
//! Every lock/wait therefore recovers the guard with
//! `unwrap_or_else(|e| e.into_inner())` instead of propagating the
//! poison panic into otherwise-healthy threads.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a non-blocking push did not enqueue. The item is handed back so
/// the caller can shed it with a reason instead of losing it.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the caller should shed the item (or
    /// retry later — this queue never blocks inside `try_push`).
    Full(T),
    /// The queue was closed; no further items will ever be accepted.
    Closed(T),
}

/// Occupancy snapshot of one queue, for the per-stage gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Hard capacity the queue was created with.
    pub capacity: usize,
    /// Items currently enqueued.
    pub depth: usize,
    /// High-water mark of `depth` over the queue's lifetime.
    pub max_depth: usize,
    /// Items accepted (by either push flavour).
    pub pushed: u64,
    /// Items handed to consumers.
    pub popped: u64,
    /// `try_push` attempts bounced because the queue was full.
    pub rejected: u64,
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    max_depth: usize,
    pushed: u64,
    popped: u64,
    rejected: u64,
}

/// A bounded multi-producer/multi-consumer queue (see module docs).
#[derive(Debug)]
pub struct Bounded<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Bounded<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-capacity queue can never
    /// transfer an item.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be at least 1");
        Bounded {
            capacity,
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
                max_depth: 0,
                pushed: 0,
                popped: 0,
                rejected: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    fn enqueue_locked(&self, state: &mut State<T>, item: T) {
        state.items.push_back(item);
        state.pushed += 1;
        state.max_depth = state.max_depth.max(state.items.len());
        self.not_empty.notify_one();
    }

    /// Blocking push: waits for space (backpressure), returning the
    /// item as `Err` only if the queue is (or becomes) closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if state.closed {
                return Err(item);
            }
            if state.items.len() < self.capacity {
                self.enqueue_locked(&mut state, item);
                return Ok(());
            }
            state = self.not_full.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking push: enqueues if there is space, otherwise hands
    /// the item back as [`PushError::Full`] (counted as a rejection) or
    /// [`PushError::Closed`].
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            state.rejected += 1;
            return Err(PushError::Full(item));
        }
        self.enqueue_locked(&mut state, item);
        Ok(())
    }

    /// Blocking pop: waits for an item, returning `None` only once the
    /// queue is closed *and* fully drained — consumers never lose
    /// queued work to a shutdown.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = state.items.pop_front() {
                state.popped += 1;
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: future pushes fail, and consumers see `None`
    /// once the remaining items are drained. Idempotent.
    pub fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.closed = true;
        // Wake everyone: blocked producers must give up, blocked
        // consumers must drain-and-exit.
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Items currently enqueued.
    pub fn depth(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).items.len()
    }

    /// Occupancy snapshot for the per-stage gauges.
    pub fn stats(&self) -> QueueStats {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        QueueStats {
            capacity: self.capacity,
            depth: state.items.len(),
            max_depth: state.max_depth,
            pushed: state.pushed,
            popped: state.popped,
            rejected: state.rejected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_order_and_stats() {
        let q = Bounded::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert_eq!(q.depth(), 4);
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        let s = q.stats();
        assert_eq!((s.pushed, s.popped, s.rejected), (4, 4, 0));
        assert_eq!(s.max_depth, 4);
        assert_eq!(s.depth, 0);
    }

    #[test]
    fn try_push_rejects_exactly_past_capacity() {
        let q = Bounded::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.try_push(4), Err(PushError::Full(4)));
        assert_eq!(q.stats().rejected, 2);
        // Draining one slot re-opens exactly one.
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(5).is_ok());
        assert_eq!(q.try_push(6), Err(PushError::Full(6)));
    }

    #[test]
    fn close_rejects_producers_and_drains_consumers() {
        let q = Bounded::new(4);
        q.push("a").unwrap();
        q.close();
        assert_eq!(q.push("b"), Err("b"));
        assert_eq!(q.try_push("c"), Err(PushError::Closed("c")));
        // The queued item survives the close…
        assert_eq!(q.pop(), Some("a"));
        // …and only then does the consumer see end-of-stream.
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "close is sticky");
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let q = Bounded::new(1);
        q.push(0u32).unwrap();
        let popped = AtomicUsize::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                // Blocks until the main thread pops.
                q.push(1).unwrap();
            });
            std::thread::sleep(std::time::Duration::from_millis(10));
            assert_eq!(q.pop(), Some(0));
            popped.fetch_add(1, Ordering::Relaxed);
            assert_eq!(q.pop(), Some(1));
        });
        assert_eq!(q.stats().pushed, 2);
    }

    #[test]
    fn close_unblocks_a_waiting_producer() {
        let q = Bounded::new(1);
        q.push(0u32).unwrap();
        std::thread::scope(|s| {
            let h = s.spawn(|| q.push(1));
            std::thread::sleep(std::time::Duration::from_millis(10));
            q.close();
            assert_eq!(h.join().unwrap(), Err(1), "closed queue returns the item");
        });
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = Bounded::<u8>::new(0);
    }

    #[test]
    fn poisoned_lock_does_not_kill_the_pipeline() {
        // Regression: a worker panicking while holding the queue mutex
        // (any panic between lock and unlock — an assert in the encode
        // path, an OOM abort hook, a bug) used to poison it, and every
        // subsequent `.lock().unwrap()` in the healthy stages turned
        // one crashed thread into a wedged-then-panicking pipeline.
        // The queue must keep draining after a poisoning panic.
        let q = Bounded::new(4);
        q.push(1u32).unwrap();
        std::thread::scope(|s| {
            let holder = s.spawn(|| {
                let _guard = q.state.lock().unwrap();
                panic!("holder dies with the lock");
            });
            assert!(holder.join().is_err(), "holder must have panicked");
        });
        // Every entry point still works on the poisoned mutex.
        q.push(2).unwrap();
        assert!(q.try_push(3).is_ok());
        assert_eq!(q.depth(), 3);
        assert_eq!(q.stats().pushed, 3);
        assert_eq!(q.pop(), Some(1));
        q.close();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None, "drain completes after poisoning");
    }
}
