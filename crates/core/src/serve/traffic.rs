//! Deterministic synthetic traffic: a seeded arrival process over a
//! realistic job mix.
//!
//! A datacenter encode tier does not see a CRF sweep; it sees a stream
//! of jobs drawn from a stable distribution — an ABR resolution ladder,
//! a quality/preset policy, a codec split skewed toward the cheap
//! incumbents with a growing AV1 share. [`generate`] samples exactly
//! that shape from a single seed: every draw (inter-arrival gap, clip,
//! codec, quality tier, preset, ladder rung) comes from one
//! `SmallRng`, so a fixed seed yields a byte-identical job list on
//! every run — the property the service's job-level summary (and the
//! CI smoke) relies on.
//!
//! Arrivals are a Poisson-like process: exponential inter-arrival gaps
//! around [`TrafficConfig::mean_gap_us`]. The timestamps are *virtual*
//! (microseconds since traffic start); the server decides whether to
//! pace against them in real time (`--pace`) or inject as fast as the
//! ingress queue accepts (`--pace 0`, the deterministic CI mode).

use crate::workbench::{equivalent_params, RunSpec};
use rand::{Rng, SeedableRng, SmallRng};
use vstress_codecs::CodecId;
use vstress_video::vbench::FidelityConfig;

/// Clip popularity: a handful of catalogue clips with a skew toward
/// screen content and gaming, the segments the paper calls out as
/// growth drivers.
const CLIP_MIX: &[(&str, u32)] =
    &[("desktop", 25), ("game1", 20), ("bike", 15), ("cat", 15), ("hall", 15), ("chicken", 10)];

/// Codec split: x264 still carries most traffic, AV1 (SVT) is the
/// growing premium tier, libaom a trickle (too slow to serve widely —
/// the paper's headline observation).
const CODEC_MIX: &[(CodecId, u32)] = &[
    (CodecId::X264, 35),
    (CodecId::SvtAv1, 25),
    (CodecId::X265, 20),
    (CodecId::LibvpxVp9, 15),
    (CodecId::Libaom, 5),
];

/// Quality tiers as AV1-basis CRF points (normalized per codec family
/// by [`equivalent_params`]); mid-quality dominates.
const CRF_MIX: &[(u8, u32)] = &[(20, 10), (30, 25), (40, 35), (50, 20), (60, 10)];

/// Preset tiers (AV1 basis, 8 = fastest): services run fast presets for
/// the long tail and slower ones for premium titles.
const PRESET_MIX: &[(u8, u32)] = &[(8, 50), (6, 30), (4, 20)];

/// One weighted draw from `table`. Weights are integers so the sampling
/// path stays free of float round-off.
fn pick<T: Copy>(rng: &mut SmallRng, table: &[(T, u32)]) -> T {
    let total: u32 = table.iter().map(|(_, w)| w).sum();
    let mut roll = rng.gen_range(0..total);
    for &(value, weight) in table {
        if roll < weight {
            return value;
        }
        roll -= weight;
    }
    unreachable!("roll < sum of weights")
}

/// Knobs of the synthetic arrival process.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Seed for every random draw; same seed ⇒ identical job list.
    pub seed: u64,
    /// Number of jobs to generate.
    pub jobs: usize,
    /// Mean exponential inter-arrival gap, in virtual microseconds.
    pub mean_gap_us: u64,
    /// Frames synthesized per clip (fidelity knob; smaller = cheaper).
    pub frame_count: usize,
    /// The resolution ladder as `(dimension_divisor, weight)` rungs —
    /// divisor 8 is the "1080p-class" top rung of the quick fidelity
    /// scale, 64 the cheapest bottom rung. Divisors must be powers of
    /// two ≤ 64: the scaled cache hierarchy
    /// (`HierarchyConfig::broadwell_scaled`) rejects anything else.
    pub ladder: Vec<(usize, u32)>,
}

impl TrafficConfig {
    /// The quick profile: cheap rungs only and short clips, so a smoke
    /// run (CI, tests) finishes in seconds.
    pub fn quick(seed: u64, jobs: usize) -> Self {
        TrafficConfig {
            seed,
            jobs,
            mean_gap_us: 50_000,
            frame_count: 4,
            ladder: vec![(16, 40), (32, 35), (64, 25)],
        }
    }

    /// The standard profile: the full ladder including the expensive
    /// top rungs, at the workbench's default frame count.
    pub fn standard(seed: u64, jobs: usize) -> Self {
        TrafficConfig {
            seed,
            jobs,
            mean_gap_us: 200_000,
            frame_count: 8,
            ladder: vec![(8, 10), (16, 30), (32, 35), (64, 25)],
        }
    }
}

/// One job drawn from the mix: what arrives at the service's ingress.
///
/// CRF and preset are stored on the AV1 basis the sweep experiments
/// use; [`JobSpec::run_spec`] normalizes them per codec family, exactly
/// like the paper's cross-codec comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSpec {
    /// Sequential id, in arrival order.
    pub id: u64,
    /// Virtual arrival time, microseconds since traffic start.
    pub arrival_us: u64,
    /// Catalogue clip name.
    pub clip: &'static str,
    /// Target codec.
    pub codec: CodecId,
    /// Quality point (AV1-basis CRF, 0–63).
    pub crf: u8,
    /// Speed point (AV1-basis preset, 0 slow – 8 fast).
    pub preset: u8,
    /// Ladder rung: dimension divisor applied to the clip's native
    /// resolution (also used as the cache-hierarchy scale divisor).
    pub divisor: usize,
    /// Frames to synthesize.
    pub frames: usize,
}

impl JobSpec {
    /// The characterization spec this job runs as. Uses the workbench's
    /// shared fidelity seed, so a `--store` warmed by `vstress-repro`
    /// at the same divisor/frame-count serves these jobs too.
    pub fn run_spec(&self) -> RunSpec {
        RunSpec {
            clip: self.clip,
            codec: self.codec,
            params: equivalent_params(self.codec, self.crf, self.preset),
            fidelity: FidelityConfig {
                dimension_divisor: self.divisor,
                frame_count: self.frames,
                ..FidelityConfig::default()
            },
            cache_divisor: self.divisor,
            model_pipeline: true,
            tile_workers: 1,
        }
    }

    /// The stable one-line description used by the job-level summary
    /// (codec-native CRF/preset, i.e. what the encoder actually ran).
    pub fn describe(&self) -> String {
        let p = equivalent_params(self.codec, self.crf, self.preset);
        format!(
            "clip={} codec={} crf={} preset={} div={} frames={} arr_us={}",
            self.clip, self.codec, p.crf, p.preset, self.divisor, self.frames, self.arrival_us
        )
    }

    /// The fields that determine the encode result — the dedup key for
    /// cache prewarming ([`crate::serve::unique_specs`]).
    pub fn work_key(&self) -> (&'static str, CodecId, u8, u8, usize, usize) {
        (self.clip, self.codec, self.crf, self.preset, self.divisor, self.frames)
    }
}

/// Samples the full arrival schedule for `cfg` (see module docs).
///
/// # Panics
///
/// Panics if the ladder is empty or a rung's divisor is not a power of
/// two ≤ 64 — failing here, before any job is admitted, beats a panic
/// deep inside an encode worker.
pub fn generate(cfg: &TrafficConfig) -> Vec<JobSpec> {
    assert!(!cfg.ladder.is_empty(), "traffic needs at least one ladder rung");
    for &(div, _) in &cfg.ladder {
        assert!(
            div.is_power_of_two() && div <= 64,
            "ladder divisor {div} must be a power of two <= 64 (cache scaling requires it)"
        );
    }
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut at_us: u64 = 0;
    (0..cfg.jobs as u64)
        .map(|id| {
            // Exponential gap via inverse transform; u < 1 keeps ln finite.
            let u: f64 = rng.gen();
            let gap = -(1.0 - u).ln() * cfg.mean_gap_us as f64;
            at_us = at_us.saturating_add(gap as u64);
            JobSpec {
                id,
                arrival_us: at_us,
                clip: pick(&mut rng, CLIP_MIX),
                codec: pick(&mut rng, CODEC_MIX),
                crf: pick(&mut rng, CRF_MIX),
                preset: pick(&mut rng, PRESET_MIX),
                divisor: pick(&mut rng, &cfg.ladder),
                frames: cfg.frame_count,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_traffic() {
        let cfg = TrafficConfig::quick(42, 64);
        assert_eq!(generate(&cfg), generate(&cfg));
        let other = TrafficConfig::quick(43, 64);
        assert_ne!(generate(&cfg), generate(&other), "seed must matter");
    }

    #[test]
    fn arrivals_are_monotone_and_mix_is_diverse() {
        let jobs = generate(&TrafficConfig::quick(7, 256));
        assert_eq!(jobs.len(), 256);
        for pair in jobs.windows(2) {
            assert!(pair[0].arrival_us <= pair[1].arrival_us);
            assert_eq!(pair[0].id + 1, pair[1].id);
        }
        let codecs: std::collections::BTreeSet<_> = jobs.iter().map(|j| j.codec).collect();
        assert!(codecs.len() >= 4, "256 draws should hit most codecs");
        let rungs: std::collections::BTreeSet<_> = jobs.iter().map(|j| j.divisor).collect();
        assert_eq!(rungs.len(), 3, "quick ladder has three rungs");
    }

    #[test]
    fn run_specs_are_valid_and_normalized() {
        for job in generate(&TrafficConfig::quick(11, 64)) {
            let spec = job.run_spec();
            assert_eq!(spec.fidelity.dimension_divisor, spec.cache_divisor);
            // The normalized params must satisfy the codec's ranges —
            // Encoder::new validates, so just build one.
            assert!(
                vstress_codecs::Encoder::new(spec.codec, spec.params).is_ok(),
                "invalid params for {job:?}"
            );
        }
    }

    #[test]
    fn ladder_rungs_survive_cache_scaling() {
        // Regression: a non-power-of-two rung (the first cut of the
        // quick ladder had 24) panics inside the scaled cache hierarchy
        // — in a worker thread, mid-serve. Every profile rung must be
        // accepted by the scaler up front.
        for cfg in [TrafficConfig::quick(0, 1), TrafficConfig::standard(0, 1)] {
            for &(div, _) in &cfg.ladder {
                let _ = vstress_cache::HierarchyConfig::broadwell_scaled(div);
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_ladder_divisor_is_rejected_before_any_job_runs() {
        let mut cfg = TrafficConfig::quick(0, 4);
        cfg.ladder = vec![(24, 1)];
        let _ = generate(&cfg);
    }

    #[test]
    fn mean_gap_roughly_matches() {
        let cfg = TrafficConfig::quick(3, 2000);
        let jobs = generate(&cfg);
        let mean = jobs.last().unwrap().arrival_us as f64 / jobs.len() as f64;
        let expect = cfg.mean_gap_us as f64;
        assert!(
            (mean - expect).abs() < expect * 0.2,
            "empirical mean gap {mean:.0}us vs configured {expect:.0}us"
        );
    }
}
