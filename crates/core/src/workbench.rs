//! The characterization pipeline: one encode, fully instrumented.

use crate::runtime::cycles_to_seconds;
use vstress_codecs::taskgraph::TaskTrace;
use vstress_codecs::{CodecError, CodecId, Encoder, EncoderParams};
use vstress_pipeline::{CoreModel, CoreReport};
use vstress_trace::stream::{hex_decode, hex_encode};
use vstress_trace::{
    ChunkTx, CountingProbe, EventStream, HotKernelProfile, OpMix, StreamRecorder, TeeProbe,
};
use vstress_video::vbench::{self, FidelityConfig};
use vstress_video::{Clip, VideoError};

/// Everything needed to run one characterized encode.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// vbench clip name.
    pub clip: &'static str,
    /// Codec model.
    pub codec: CodecId,
    /// Encoder parameters.
    pub params: EncoderParams,
    /// Clip synthesis fidelity.
    pub fidelity: FidelityConfig,
    /// Cache-hierarchy scale divisor (match `fidelity.dimension_divisor`).
    pub cache_divisor: usize,
    /// Whether to run the pipeline model (cycles, top-down, MPKI). When
    /// `false`, only the instruction mix is gathered — roughly 3x faster.
    pub model_pipeline: bool,
    /// Worker threads for the intra-encode tile/wavefront decomposition
    /// (`Encoder::encode_with`). The result is worker-count invariant —
    /// bitstream, measurements, and probe stream are byte-identical at
    /// any value — so this field is deliberately **excluded** from the
    /// run cache key and the store key.
    pub tile_workers: usize,
}

impl RunSpec {
    /// A spec at reduced "smoke" fidelity (tests, doc examples).
    pub fn quick(clip: &'static str, codec: CodecId, params: EncoderParams) -> Self {
        RunSpec {
            clip,
            codec,
            params,
            fidelity: FidelityConfig::smoke(),
            cache_divisor: 16,
            model_pipeline: true,
            tile_workers: 1,
        }
    }

    /// A spec at the workbench's default fidelity.
    pub fn standard(clip: &'static str, codec: CodecId, params: EncoderParams) -> Self {
        RunSpec {
            clip,
            codec,
            params,
            fidelity: FidelityConfig::default(),
            cache_divisor: 8,
            model_pipeline: true,
            tile_workers: 1,
        }
    }

    /// Disables the pipeline model (instruction mix only).
    #[must_use]
    pub fn counting_only(mut self) -> Self {
        self.model_pipeline = false;
        self
    }

    /// Sets the tile-worker count (see [`RunSpec::tile_workers`]).
    #[must_use]
    pub fn with_tile_workers(mut self, workers: usize) -> Self {
        self.tile_workers = workers.max(1);
        self
    }
}

/// Result of one characterized encode — the paper's full per-run
/// measurement set.
///
/// Serializable (and `PartialEq`) so the persistent run store
/// ([`crate::exec::store`]) can round-trip it across processes and
/// tests can assert bit-identity of reloaded entries.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CharacterizationRun {
    /// The spec's codec.
    pub codec: CodecId,
    /// The spec's parameters.
    pub params: EncoderParams,
    /// Clip name.
    pub clip: String,
    /// Retired-instruction mix (Pin substitute output).
    pub mix: OpMix,
    /// Hot-kernel profile (gprof substitute output).
    pub profile: HotKernelProfile,
    /// Core-model report (perf + top-down substitute). When the spec ran
    /// counting-only, this report carries zero cycles.
    pub core: CoreReport,
    /// Modelled execution time in seconds (0 when counting-only).
    pub seconds: f64,
    /// Mean luma PSNR of the reconstruction.
    pub mean_psnr: f64,
    /// Bitrate in kbps.
    pub bitrate_kbps: f64,
    /// Total encoded bits.
    pub total_bits: u64,
    /// Per-stage task costs for the threading study.
    pub tasks: TaskTrace,
}

/// Errors from the characterization pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum WorkbenchError {
    /// Unknown clip or synthesis failure.
    Video(VideoError),
    /// Encoder rejected the parameters or input.
    Codec(CodecError),
}

impl std::fmt::Display for WorkbenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkbenchError::Video(e) => write!(f, "video: {e}"),
            WorkbenchError::Codec(e) => write!(f, "codec: {e}"),
        }
    }
}

impl std::error::Error for WorkbenchError {}

impl From<VideoError> for WorkbenchError {
    fn from(e: VideoError) -> Self {
        WorkbenchError::Video(e)
    }
}

impl From<CodecError> for WorkbenchError {
    fn from(e: CodecError) -> Self {
        WorkbenchError::Codec(e)
    }
}

/// Synthesizes the spec's clip.
pub fn clip_for(spec: &RunSpec) -> Result<Clip, WorkbenchError> {
    Ok(vbench::clip(spec.clip)?.synthesize(&spec.fidelity))
}

/// Runs one fully characterized encode.
///
/// # Errors
///
/// Returns [`WorkbenchError`] for unknown clips or invalid parameters.
pub fn characterize(spec: &RunSpec) -> Result<CharacterizationRun, WorkbenchError> {
    let clip = clip_for(spec)?;
    characterize_clip(spec, &clip)
}

/// Like [`characterize`], but reuses an already-synthesized clip.
pub fn characterize_clip(
    spec: &RunSpec,
    clip: &Clip,
) -> Result<CharacterizationRun, WorkbenchError> {
    let encoder = Encoder::new(spec.codec, spec.params)?;
    let tile_workers = spec.tile_workers.max(1);
    if spec.model_pipeline {
        let mut probe =
            TeeProbe::new(CountingProbe::new(), CoreModel::broadwell_scaled(spec.cache_divisor));
        let out = encoder.encode_with(clip, &mut probe, tile_workers)?;
        let (counting, core) = probe.into_parts();
        let report = core.into_report();
        Ok(CharacterizationRun {
            codec: spec.codec,
            params: spec.params,
            clip: clip.name().to_owned(),
            mix: counting.mix(),
            profile: counting.profile().clone(),
            seconds: cycles_to_seconds(report.cycles),
            core: report,
            mean_psnr: out.mean_psnr(),
            bitrate_kbps: out.bitrate_kbps,
            total_bits: out.total_bits(),
            tasks: out.tasks,
        })
    } else {
        let mut probe = CountingProbe::new();
        let out = encoder.encode_with(clip, &mut probe, tile_workers)?;
        // A zeroed report keeps the type simple for counting-only runs.
        let report = CoreModel::broadwell_scaled(spec.cache_divisor).into_report();
        Ok(CharacterizationRun {
            codec: spec.codec,
            params: spec.params,
            clip: clip.name().to_owned(),
            mix: probe.mix(),
            profile: probe.profile().clone(),
            seconds: 0.0,
            core: report,
            mean_psnr: out.mean_psnr(),
            bitrate_kbps: out.bitrate_kbps,
            total_bits: out.total_bits(),
            tasks: out.tasks,
        })
    }
}

/// One recorded encode: the full canonical probe event stream plus every
/// stream-independent measurement the encode produced.
///
/// A capture is independent of `cache_divisor` and `model_pipeline`
/// (simulation-side knobs) and of `tile_workers` (the probe-merge
/// contract makes the stream worker-count invariant), so a single
/// capture serves **every** characterization of its
/// (clip, codec, params, fidelity) point — capture once, simulate many.
#[derive(Debug, Clone, PartialEq)]
pub struct CapturedEncode {
    /// Clip name.
    pub clip: String,
    /// The chunked, canonical-address probe event stream.
    pub stream: EventStream,
    /// Retired-instruction mix of the encode.
    pub mix: OpMix,
    /// Hot-kernel profile of the encode.
    pub profile: HotKernelProfile,
    /// Mean luma PSNR of the reconstruction.
    pub mean_psnr: f64,
    /// Bitrate in kbps.
    pub bitrate_kbps: f64,
    /// Total encoded bits.
    pub total_bits: u64,
    /// Per-stage task costs for the threading study.
    pub tasks: TaskTrace,
    /// The encoded bitstream (the decode-cost study decodes it).
    pub bitstream: Vec<u8>,
}

// Hand-written so the bitstream travels as hex rather than as a seq of
// one JSON number per byte (the derive would work, but triples the
// store entry for the densest field).
impl serde::Serialize for CapturedEncode {
    fn serialize(&self, s: &mut serde::Serializer) {
        self.clip.serialize(s);
        self.stream.serialize(s);
        self.mix.serialize(s);
        self.profile.serialize(s);
        self.mean_psnr.serialize(s);
        self.bitrate_kbps.serialize(s);
        self.total_bits.serialize(s);
        self.tasks.serialize(s);
        hex_encode(&self.bitstream).serialize(s);
    }
}

impl<'de> serde::Deserialize<'de> for CapturedEncode {
    fn deserialize(d: &mut serde::Deserializer<'de>) -> Result<Self, serde::Error> {
        Ok(CapturedEncode {
            clip: String::deserialize(d)?,
            stream: EventStream::deserialize(d)?,
            mix: OpMix::deserialize(d)?,
            profile: HotKernelProfile::deserialize(d)?,
            mean_psnr: f64::deserialize(d)?,
            bitrate_kbps: f64::deserialize(d)?,
            total_bits: u64::deserialize(d)?,
            tasks: TaskTrace::deserialize(d)?,
            bitstream: hex_decode(&String::deserialize(d)?)?,
        })
    }
}

/// Records one encode as a [`CapturedEncode`].
///
/// A [`StreamRecorder`] gathers the canonical event stream (and, through
/// its embedded counting probe, the mix and hot-kernel profile) while
/// the encoder runs at the spec's tile-worker count. With a `sink`,
/// flushed chunks are additionally handed to a concurrent consumer as
/// they fill (capture/simulate overlap); the stream in the returned
/// capture is complete either way.
///
/// # Errors
///
/// Returns [`WorkbenchError`] if the encoder rejects the parameters.
pub fn capture_encode_with(
    spec: &RunSpec,
    clip: &Clip,
    sink: Option<ChunkTx>,
) -> Result<CapturedEncode, WorkbenchError> {
    let encoder = Encoder::new(spec.codec, spec.params)?;
    let mut rec = match sink {
        Some(tx) => StreamRecorder::with_sink(tx),
        None => StreamRecorder::new(),
    };
    let out = encoder.encode_with(clip, &mut rec, spec.tile_workers.max(1))?;
    let (stream, counting) = rec.finish();
    Ok(CapturedEncode {
        clip: clip.name().to_owned(),
        stream,
        mix: counting.mix(),
        profile: counting.profile().clone(),
        mean_psnr: out.mean_psnr(),
        bitrate_kbps: out.bitrate_kbps,
        total_bits: out.total_bits(),
        tasks: out.tasks,
        bitstream: out.bitstream,
    })
}

/// [`capture_encode_with`], synthesizing the clip and with no sink.
///
/// # Errors
///
/// Returns [`WorkbenchError`] for unknown clips or invalid parameters.
pub fn capture_encode(spec: &RunSpec) -> Result<CapturedEncode, WorkbenchError> {
    let clip = clip_for(spec)?;
    capture_encode_with(spec, &clip, None)
}

/// Derives the full characterization of `spec` from a captured encode of
/// the same (clip, codec, params, fidelity) point: a canonical stream
/// replay through a fresh core model (or no simulation at all, for
/// counting-only specs).
///
/// Bit-identical to the fused live path ([`characterize_clip`]) — the
/// `stream_equivalence` integration test is the oracle.
pub fn characterize_from_capture(spec: &RunSpec, cap: &CapturedEncode) -> CharacterizationRun {
    let mut core = CoreModel::broadwell_scaled(spec.cache_divisor);
    if spec.model_pipeline {
        core.consume_stream(&cap.stream);
    }
    run_from_parts(spec, cap, core)
}

/// Assembles the run record from a capture plus a core model that has
/// already consumed the capture's stream (or is untouched, for
/// counting-only specs) — shared by the serial replay path and the
/// channel-overlapped capture pipeline in [`crate::exec::RunCache`].
pub fn run_from_parts(
    spec: &RunSpec,
    cap: &CapturedEncode,
    core: CoreModel,
) -> CharacterizationRun {
    let report = core.into_report();
    let seconds = if spec.model_pipeline { cycles_to_seconds(report.cycles) } else { 0.0 };
    CharacterizationRun {
        codec: spec.codec,
        params: spec.params,
        clip: cap.clip.clone(),
        mix: cap.mix,
        profile: cap.profile.clone(),
        seconds,
        core: report,
        mean_psnr: cap.mean_psnr,
        bitrate_kbps: cap.bitrate_kbps,
        total_bits: cap.total_bits,
        tasks: cap.tasks.clone(),
    }
}

/// Maps an AV1-family CRF (0–63) onto the equivalent x264/x265 CRF
/// (0–51), preserving the quality point (both stretch over the same
/// internal quantizer ladder).
pub fn equivalent_h26x_crf(av1_crf: u8) -> u8 {
    ((av1_crf as u32 * 51 + 31) / 63) as u8
}

/// Maps an AV1-family preset (0 slow – 8 fast) onto the equivalent
/// x264/x265 preset (0 fast – 9 slow).
pub fn equivalent_h26x_preset(av1_preset: u8) -> u8 {
    let speed = av1_preset as f64 / 8.0;
    ((1.0 - speed) * 9.0).round() as u8
}

/// The (crf, preset) pair for `codec` matching an AV1-family quality/speed
/// point — the cross-codec normalization every comparison figure needs.
pub fn equivalent_params(codec: CodecId, av1_crf: u8, av1_preset: u8) -> EncoderParams {
    match codec {
        CodecId::SvtAv1 | CodecId::Libaom | CodecId::LibvpxVp9 => {
            EncoderParams::new(av1_crf, av1_preset)
        }
        CodecId::X264 | CodecId::X265 => {
            EncoderParams::new(equivalent_h26x_crf(av1_crf), equivalent_h26x_preset(av1_preset))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_characterization_produces_all_measurements() {
        let spec = RunSpec::quick("cat", CodecId::LibvpxVp9, EncoderParams::new(40, 6));
        let run = characterize(&spec).unwrap();
        assert!(run.mix.total() > 0);
        assert!(run.core.instructions > 0);
        assert!(run.seconds > 0.0);
        assert!(run.mean_psnr > 20.0);
        assert!(run.total_bits > 0);
        assert!(!run.tasks.frames.is_empty());
        assert!(run.profile.total() > 0);
    }

    #[test]
    fn counting_only_skips_the_pipeline() {
        let spec = RunSpec::quick("cat", CodecId::X264, EncoderParams::new(30, 5)).counting_only();
        let run = characterize(&spec).unwrap();
        assert!(run.mix.total() > 0);
        assert_eq!(run.seconds, 0.0);
        assert_eq!(run.core.instructions, 0);
    }

    #[test]
    fn characterization_is_tile_worker_invariant() {
        // The full measurement set — mix, profile, core report, task
        // trace — must not depend on how many workers ran the partition
        // search (the probe-merge contract).
        let spec = RunSpec::quick("desktop", CodecId::X265, EncoderParams::new(30, 5));
        let serial = characterize(&spec).unwrap();
        let parallel = characterize(&spec.with_tile_workers(3)).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn unknown_clip_is_an_error() {
        let spec = RunSpec::quick("nope", CodecId::X264, EncoderParams::new(30, 5));
        assert!(matches!(characterize(&spec), Err(WorkbenchError::Video(_))));
    }

    #[test]
    fn equivalent_params_preserve_quality_point() {
        use vstress_codecs::params::crf_to_qindex;
        for crf in [0u8, 10, 31, 63] {
            let h = equivalent_h26x_crf(crf);
            let qa = crf_to_qindex(crf, 63);
            let qh = crf_to_qindex(h, 51);
            assert!((qa as i32 - qh as i32).abs() <= 2, "crf {crf}: {qa} vs {qh}");
        }
        // Preset direction flips.
        assert_eq!(equivalent_h26x_preset(0), 9);
        assert_eq!(equivalent_h26x_preset(8), 0);
        let p = equivalent_params(CodecId::X265, 40, 4);
        assert_eq!(p.crf, equivalent_h26x_crf(40));
    }
}
