//! Plain-text result tables (the workbench's figure/table output format).

/// A titled, column-aligned table of strings.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Table {
    /// Table title (e.g. `"Fig. 4b — execution time vs CRF"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each row should have `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders as CSV (header row first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_owned()
            }
        };
        out.push_str(&self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < w.len() {
                    w[i] = w[i].max(cell.len());
                } else {
                    w.push(cell.len());
                }
            }
        }
        w
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "## {}", self.title)?;
        let w = self.widths();
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, c)| {
                    format!("{:<width$}", c, width = w.get(i).copied().unwrap_or(c.len()))
                })
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(f, "{}", "-".repeat(w.iter().sum::<usize>() + 2 * w.len().saturating_sub(1)))?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

/// Formats a float with 2 decimals (the tables' default precision).
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float with 1 decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a count in scientific notation (`1.7E+11` style, as Table 2).
pub fn sci(v: u64) -> String {
    format!("{:.1E}", v as f64).replace('E', "E+").replace("E+-", "E-")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push_row(vec!["short".into(), "1".into()]);
        t.push_row(vec!["a-very-long-name".into(), "2".into()]);
        let s = format!("{t}");
        assert!(s.contains("## demo"));
        assert!(s.contains("a-very-long-name"));
        let lines: Vec<&str> = s.lines().collect();
        // All data lines have the value column starting at the same offset.
        let off1 = lines[2].find('1');
        let off2 = lines[3].find('2');
        assert_eq!(off1, off2);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1,5".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"1,5\""));
        assert!(csv.starts_with("a,b\n"));
    }

    #[test]
    fn sci_matches_table2_style() {
        assert_eq!(sci(170_000_000_000), "1.7E+11");
        assert_eq!(sci(95_000_000_000), "9.5E+10");
    }
}
