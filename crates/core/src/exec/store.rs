//! Persistent, versioned, content-addressed on-disk result store.
//!
//! [`RunCache`](super::RunCache) deduplicates characterization work
//! *within* one process; this store extends the same reuse *across*
//! processes, so an interrupted or repeated `vstress-repro` invocation
//! resumes from completed specs instead of re-paying the SVT-AV1-style
//! search-space cost the paper centers on. Runs are bit-deterministic
//! (see `tests/determinism.rs`), so replaying a stored entry is
//! indistinguishable from recomputing it.
//!
//! # Layout
//!
//! ```text
//! <root>/v<SCHEMA_VERSION>/<kind>/<fnv64(key)>.entry
//! ```
//!
//! * `kind` is the cache layer: `run` (characterization runs), `window`
//!   (CBP branch windows), `cost` (encode/decode cost pairs).
//! * The file name is the FNV-1a 64-bit hash of the entry's *key text*
//!   — a human-readable rendering of everything that determines the
//!   value (clip, codec, params, fidelity, divisor, …) — so the store
//!   is content-addressed and needs no index.
//! * Each entry embeds its schema version, kind, full key text, payload
//!   and a payload checksum ([`StoredEntry`]); on read all four are
//!   verified, which catches hash collisions, cross-kind mixups and
//!   torn payloads.
//!
//! # Robustness
//!
//! * **Atomic writes** — entries are written to a temp file in the same
//!   directory and `rename`d into place, so a crashed writer can never
//!   leave a half-visible entry.
//! * **Quarantine** — a corrupt or stale entry (parse failure, version
//!   or key mismatch, bad checksum) is renamed to `*.quarantined` and
//!   treated as a miss; the value is recomputed and re-stored. Nothing
//!   in the store can make a run fail.
//! * **Versioning** — bumping [`SCHEMA_VERSION`] changes the directory,
//!   invalidating every old entry at once; the in-file version field
//!   additionally rejects entries copied across version directories.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Bump when the wire format of any stored payload type changes
/// (serde shim format, `CharacterizationRun` fields, key text, …).
/// Old entries become invisible (different directory) and unreadable
/// (in-file version check).
///
/// v2: `FrameTaskTrace` gained `plan_units` (measured tile/wavefront
/// unit costs), changing the `CharacterizationRun` wire format.
///
/// v3: the `stream` entry kind (captured probe event streams) joined
/// the store, and runs / branch windows / decode costs are now derived
/// from captured streams instead of dedicated re-encodes. Results are
/// bit-identical, but a v2 store has no streams, so the capture-once
/// layers start cold rather than mixing generations.
pub const SCHEMA_VERSION: u32 = 3;

/// Store layer for characterization runs.
pub(crate) const KIND_RUN: &str = "run";
/// Store layer for CBP branch windows.
pub(crate) const KIND_WINDOW: &str = "window";
/// Store layer for encode/decode cost pairs.
pub(crate) const KIND_COST: &str = "cost";
/// Store layer for captured encode event streams.
pub(crate) const KIND_STREAM: &str = "stream";

/// FNV-1a 64-bit hash — the store's stable content address. (The std
/// `Hasher` is explicitly not stable across releases; this is.)
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hit/miss/robustness counters for one [`RunStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Entries served from disk (work skipped).
    pub hits: u64,
    /// Lookups that found no usable entry (work performed, then stored).
    pub misses: u64,
    /// Corrupt or stale entries renamed aside and recomputed.
    pub quarantined: u64,
    /// Entry writes that failed (store skipped, run unaffected).
    pub write_errors: u64,
}

/// On-disk footprint of one entry kind (see [`RunStore::disk_usage`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KindUsage {
    /// Entry kind (`run` / `window` / `cost` / `stream`).
    pub kind: String,
    /// Number of `.entry` files.
    pub entries: u64,
    /// Total bytes of those entries.
    pub bytes: u64,
}

/// Disk-usage summary of one store's version directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiskUsage {
    /// Per-kind entry counts and sizes, sorted by kind name.
    pub kinds: Vec<KindUsage>,
    /// `*.quarantined` files still awaiting inspection.
    pub quarantined: u64,
}

/// Deletes `*.quarantined` files left under version directories older
/// than `current`. Their schema is gone, so the evidence can never be
/// re-examined against live code, and without a sweep every bump leaves
/// them accumulating forever. Quarantined files of the *current*
/// version are kept — they are the inspectable evidence of recent
/// corruption. Best-effort: IO failures leave files for the next open.
fn sweep_stale_quarantine(root: &Path, current: u32) {
    let Ok(entries) = std::fs::read_dir(root) else {
        return;
    };
    for dir in entries.flatten() {
        let name = dir.file_name();
        let version =
            name.to_str().and_then(|n| n.strip_prefix('v')).and_then(|n| n.parse::<u32>().ok());
        let Some(v) = version else { continue };
        if v >= current {
            continue;
        }
        let Ok(kinds) = std::fs::read_dir(dir.path()) else {
            continue;
        };
        for kind in kinds.flatten() {
            let Ok(files) = std::fs::read_dir(kind.path()) else {
                continue;
            };
            for f in files.flatten() {
                if f.file_name().to_string_lossy().ends_with(".quarantined") {
                    let _ = std::fs::remove_file(f.path());
                }
            }
        }
    }
}

/// The on-disk envelope around one stored payload.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
struct StoredEntry {
    /// Schema version the entry was written under.
    version: u32,
    /// Cache layer (`run` / `window` / `cost`).
    kind: String,
    /// Full key text (collision + identity check).
    key: String,
    /// The serialized payload value.
    payload: String,
    /// `fnv64` of the payload bytes.
    checksum: u64,
}

/// A persistent result store rooted at one directory.
///
/// Thread-safe: lookups and writes touch disjoint files per key, writes
/// are atomic renames, and counters are atomics. Multiple processes may
/// share one root concurrently; the worst race outcome is both
/// computing and one `rename` winning, which is harmless because runs
/// are deterministic.
pub struct RunStore {
    /// `<root>/v<version>` — the directory all entries live under.
    vdir: PathBuf,
    version: u32,
    hits: AtomicU64,
    misses: AtomicU64,
    quarantined: AtomicU64,
    write_errors: AtomicU64,
    tmp_counter: AtomicU64,
}

impl std::fmt::Debug for RunStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunStore")
            .field("vdir", &self.vdir)
            .field("version", &self.version)
            .field("stats", &self.stats())
            .finish()
    }
}

impl RunStore {
    /// Opens (creating if needed) the store rooted at `root`, under the
    /// current [`SCHEMA_VERSION`].
    ///
    /// # Errors
    ///
    /// Returns the [`std::io::Error`] from creating the version
    /// directory.
    pub fn open(root: impl AsRef<Path>) -> std::io::Result<Self> {
        Self::open_with_version(root, SCHEMA_VERSION)
    }

    /// Opens the store under an explicit schema version.
    ///
    /// Intended for tests (schema-invalidation coverage) and future
    /// migration tooling; normal callers use [`RunStore::open`].
    ///
    /// # Errors
    ///
    /// Returns the [`std::io::Error`] from creating the version
    /// directory.
    pub fn open_with_version(root: impl AsRef<Path>, version: u32) -> std::io::Result<Self> {
        let vdir = root.as_ref().join(format!("v{version}"));
        std::fs::create_dir_all(&vdir)?;
        sweep_stale_quarantine(root.as_ref(), version);
        Ok(RunStore {
            vdir,
            version,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            tmp_counter: AtomicU64::new(0),
        })
    }

    /// The version directory entries live under.
    pub fn dir(&self) -> &Path {
        &self.vdir
    }

    /// Scans the version directory and reports entries/bytes per kind
    /// plus the number of quarantined files awaiting inspection — the
    /// `store-stats` maintenance view. Purely observational (no counter
    /// changes); IO errors degrade to an empty report rather than
    /// failing, like every other store path.
    pub fn disk_usage(&self) -> DiskUsage {
        let mut usage = DiskUsage::default();
        let Ok(kinds) = std::fs::read_dir(&self.vdir) else {
            return usage;
        };
        for kind_dir in kinds.flatten() {
            if !kind_dir.path().is_dir() {
                continue;
            }
            let kind = kind_dir.file_name().to_string_lossy().into_owned();
            let mut ku = KindUsage { kind, entries: 0, bytes: 0 };
            let Ok(files) = std::fs::read_dir(kind_dir.path()) else {
                continue;
            };
            for f in files.flatten() {
                let path = f.path();
                let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
                let Some(name) = name else { continue };
                if name.ends_with(".quarantined") {
                    usage.quarantined += 1;
                } else if name.ends_with(".entry") {
                    ku.entries += 1;
                    ku.bytes += f.metadata().map(|m| m.len()).unwrap_or(0);
                }
            }
            usage.kinds.push(ku);
        }
        usage.kinds.sort_by(|a, b| a.kind.cmp(&b.kind));
        usage
    }

    /// Snapshot of the store counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
        }
    }

    fn entry_path(&self, kind: &str, key_text: &str) -> PathBuf {
        self.vdir.join(kind).join(format!("{:016x}.entry", fnv64(key_text.as_bytes())))
    }

    /// Looks up `key_text` in layer `kind`. Counts a hit or a miss; a
    /// corrupt entry is quarantined (renamed aside) and counted as both
    /// `quarantined` and a miss.
    pub(crate) fn get<T>(&self, kind: &str, key_text: &str) -> Option<T>
    where
        T: for<'de> serde::Deserialize<'de>,
    {
        let path = self.entry_path(kind, key_text);
        let Ok(data) = std::fs::read_to_string(&path) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        match self.parse_entry(kind, key_text, &data) {
            Ok(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            Err(why) => {
                // Move the bad entry aside (best effort) so the slot is
                // free for the recomputed value and the evidence stays
                // inspectable.
                let mut quarantine = path.clone().into_os_string();
                quarantine.push(".quarantined");
                let _ = std::fs::rename(&path, &quarantine);
                eprintln!(
                    "vstress store: quarantined {} ({why})",
                    path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default()
                );
                self.quarantined.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn parse_entry<T>(&self, kind: &str, key_text: &str, data: &str) -> Result<T, serde::Error>
    where
        T: for<'de> serde::Deserialize<'de>,
    {
        let entry: StoredEntry = serde::from_str(data)?;
        if entry.version != self.version {
            return Err(serde::Error::new(format!(
                "schema version {} (store is v{})",
                entry.version, self.version
            )));
        }
        if entry.kind != kind {
            return Err(serde::Error::new(format!("kind {:?}, expected {kind:?}", entry.kind)));
        }
        if entry.key != key_text {
            return Err(serde::Error::new("key text mismatch (hash collision?)"));
        }
        if fnv64(entry.payload.as_bytes()) != entry.checksum {
            return Err(serde::Error::new("payload checksum mismatch"));
        }
        serde::from_str(&entry.payload)
    }

    /// Stores `value` under `key_text` in layer `kind` via an atomic
    /// temp-file + rename. Failures only bump `write_errors`: the store
    /// is an optimization and must never fail a run.
    pub(crate) fn put<T: serde::Serialize>(&self, kind: &str, key_text: &str, value: &T) {
        let payload = serde::to_string(value);
        let entry = StoredEntry {
            version: self.version,
            kind: kind.to_owned(),
            key: key_text.to_owned(),
            checksum: fnv64(payload.as_bytes()),
            payload,
        };
        let path = self.entry_path(kind, key_text);
        if self.write_atomic(&path, &serde::to_string(&entry)).is_err() {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn write_atomic(&self, path: &Path, text: &str) -> std::io::Result<()> {
        let dir = path.parent().expect("entry paths always have a parent");
        std::fs::create_dir_all(dir)?;
        let tmp = dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, text)?;
        let renamed = std::fs::rename(&tmp, path);
        if renamed.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        renamed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("vstress-store-unit-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn roundtrip_and_counters() {
        let root = tmp_root("roundtrip");
        let store = RunStore::open(&root).unwrap();
        assert_eq!(store.get::<u64>(KIND_RUN, "k"), None);
        store.put(KIND_RUN, "k", &42u64);
        assert_eq!(store.get::<u64>(KIND_RUN, "k"), Some(42));
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.quarantined, s.write_errors), (1, 1, 0, 0));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn kinds_are_disjoint() {
        let root = tmp_root("kinds");
        let store = RunStore::open(&root).unwrap();
        store.put(KIND_RUN, "k", &1u64);
        assert_eq!(store.get::<u64>(KIND_WINDOW, "k"), None);
        assert_eq!(store.get::<u64>(KIND_RUN, "k"), Some(1));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_entry_is_quarantined_not_fatal() {
        let root = tmp_root("corrupt");
        let store = RunStore::open(&root).unwrap();
        store.put(KIND_RUN, "k", &7u64);
        let path = store.entry_path(KIND_RUN, "k");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert_eq!(store.get::<u64>(KIND_RUN, "k"), None);
        assert_eq!(store.stats().quarantined, 1);
        assert!(!path.exists(), "corrupt entry must be moved aside");
        let mut quarantined = path.into_os_string();
        quarantined.push(".quarantined");
        assert!(PathBuf::from(quarantined).exists());
        // The slot is writable again.
        store.put(KIND_RUN, "k", &7u64);
        assert_eq!(store.get::<u64>(KIND_RUN, "k"), Some(7));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn version_mismatch_rejects_copied_entries() {
        let root = tmp_root("version");
        let v1 = RunStore::open_with_version(&root, 1).unwrap();
        v1.put(KIND_RUN, "k", &9u64);
        // Different version: entries live in a different directory.
        let v2 = RunStore::open_with_version(&root, 2).unwrap();
        assert_eq!(v2.get::<u64>(KIND_RUN, "k"), None);
        assert_eq!(v2.stats().quarantined, 0, "absent, not corrupt");
        // An entry smuggled across version directories fails the
        // in-file version check and is quarantined.
        let from = v1.entry_path(KIND_RUN, "k");
        let to = v2.entry_path(KIND_RUN, "k");
        std::fs::create_dir_all(to.parent().unwrap()).unwrap();
        std::fs::copy(&from, &to).unwrap();
        assert_eq!(v2.get::<u64>(KIND_RUN, "k"), None);
        assert_eq!(v2.stats().quarantined, 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn stale_quarantined_files_are_swept_on_open() {
        let root = tmp_root("sweep");
        // An old-version store quarantines a corrupted entry.
        let old = RunStore::open_with_version(&root, SCHEMA_VERSION - 1).unwrap();
        old.put(KIND_RUN, "k", &1u64);
        let path = old.entry_path(KIND_RUN, "k");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert_eq!(old.get::<u64>(KIND_RUN, "k"), None);
        let mut stale = path.into_os_string();
        stale.push(".quarantined");
        let stale = PathBuf::from(stale);
        assert!(stale.exists());
        drop(old);

        // Opening the current version deletes the stale quarantine file
        // (its schema can never be re-examined) …
        let cur = RunStore::open(&root).unwrap();
        assert!(!stale.exists(), "stale quarantined file must be swept");

        // … but current-version quarantine evidence survives reopens.
        cur.put(KIND_RUN, "k", &2u64);
        let path = cur.entry_path(KIND_RUN, "k");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert_eq!(cur.get::<u64>(KIND_RUN, "k"), None);
        drop(cur);
        let again = RunStore::open(&root).unwrap();
        let mut kept = again.entry_path(KIND_RUN, "k").into_os_string();
        kept.push(".quarantined");
        assert!(PathBuf::from(kept).exists(), "current-version evidence is kept");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn disk_usage_reports_kinds_and_quarantine() {
        let root = tmp_root("usage");
        let store = RunStore::open(&root).unwrap();
        store.put(KIND_RUN, "a", &1u64);
        store.put(KIND_RUN, "b", &2u64);
        store.put(KIND_COST, "c", &3u64);
        // Corrupt one run entry so a read quarantines it.
        let path = store.entry_path(KIND_RUN, "a");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert_eq!(store.get::<u64>(KIND_RUN, "a"), None);

        let u = store.disk_usage();
        assert_eq!(u.quarantined, 1);
        let kinds: Vec<&str> = u.kinds.iter().map(|k| k.kind.as_str()).collect();
        assert_eq!(kinds, ["cost", "run"], "sorted by kind name");
        let run = u.kinds.iter().find(|k| k.kind == "run").unwrap();
        assert_eq!(run.entries, 1, "quarantined files are not entries");
        assert!(run.bytes > 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn wrong_key_same_hash_slot_is_rejected() {
        let root = tmp_root("keycheck");
        let store = RunStore::open(&root).unwrap();
        store.put(KIND_RUN, "key-a", &1u64);
        // Force a lookup of a different key onto the same file by
        // copying the entry to key-b's address.
        let from = store.entry_path(KIND_RUN, "key-a");
        let to = store.entry_path(KIND_RUN, "key-b");
        std::fs::copy(&from, &to).unwrap();
        assert_eq!(store.get::<u64>(KIND_RUN, "key-b"), None);
        assert_eq!(store.stats().quarantined, 1);
        let _ = std::fs::remove_dir_all(&root);
    }
}
