//! Parallel experiment execution and the characterization run-cache.
//!
//! Every figure/table runner decomposes into independent
//! [`RunSpec`]s, so the whole reproduction is an embarrassingly
//! parallel batch — the same structure the paper's datacenter framing
//! assumes. [`run_all`] fans specs out over the
//! [`run_ordered`](vstress_codecs::batch::run_ordered) work queue, and
//! [`RunCache`] memoizes five layers of shared work:
//!
//! * **captures** — [`CapturedEncode`]s: the canonical probe event
//!   stream plus every stream-independent measurement of one encode,
//!   keyed by (clip, codec, params, fidelity) only. This is the **only
//!   layer that encodes**; every other layer derives its result from
//!   the capture, so one encode serves many simulations
//!   (capture once, simulate many).
//! * **runs** — [`CharacterizationRun`]s keyed by everything that
//!   determines them (clip, codec, params, fidelity, cache divisor,
//!   pipeline on/off), derived by replaying the capture's stream
//!   through a fresh core model — or, when the capture itself is being
//!   recorded, by simulating chunks concurrently with the recording
//!   encode over a bounded channel. Figures that share quality points
//!   (Figs. 4–7 slice one sweep; Fig. 1/2a/2b share encodes; Table 2
//!   shares the CRF-63 encodes with Fig. 8) never recompute an encode.
//! * **clips** — synthesized vbench clips keyed by (name, fidelity).
//! * **branch windows** — the CBP study's mid-run traces, sliced out of
//!   the capture's stream (keyed additionally by the window length), so
//!   a CBP matrix re-run against a warm store performs zero encodes.
//! * **encode/decode costs** — the decode-cost study's instruction
//!   pairs; the encode side reads the capture's mix, the decode side
//!   decodes the capture's bitstream.
//!
//! Attaching a persistent [`store::RunStore`] (see
//! [`RunCache::with_store`]) extends the capture, run, window and cost
//! layers across processes: a repeated or interrupted
//! `vstress-repro --store` invocation reloads completed entries from
//! disk instead of re-encoding, and new simulations (a different cache
//! divisor, another window length) replay the persisted stream instead
//! of re-running the encoder. Clips are *not* persisted — synthesizing
//! one is cheaper than deserializing its pixel planes, and a fully
//! store-served run never needs the clip at all.
//!
//! Parallelism never changes results: each worker owns its probes and
//! `CoreModel`, and every probed buffer carries a synthetic
//! page-aligned address (see `vstress_trace::probe_addr`), so a spec's
//! characterization is a pure function of the spec. The
//! `parallel_equivalence` integration test pins this down; the same
//! determinism is what makes cross-process reuse sound.

pub mod store;

pub use store::{DiskUsage, KindUsage, RunStore, StoreStats, SCHEMA_VERSION};

use crate::workbench::{
    capture_encode_with, characterize_from_capture, run_from_parts, CapturedEncode,
    CharacterizationRun, RunSpec, WorkbenchError,
};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use store::{KIND_COST, KIND_RUN, KIND_STREAM, KIND_WINDOW};
use vstress_codecs::batch::run_ordered;
use vstress_codecs::{CodecId, Decoder, EncoderParams};
use vstress_pipeline::CoreModel;
use vstress_trace::stream::chunk_channel;
use vstress_trace::{BranchRecord, BranchWindowProbe, ChunkTx, CountingProbe};
use vstress_video::vbench::FidelityConfig;
use vstress_video::Clip;

/// Bounded depth (in ~1 MiB chunks) of the capture→simulate channel:
/// enough that neither side stalls on short bursts, small enough that a
/// slow consumer caps the recorder's working set at a few megabytes.
const CAPTURE_CHANNEL_CHUNKS: usize = 8;

/// The hashable projection of [`FidelityConfig`].
type FidelityKey = (usize, usize, u64);

fn fidelity_key(f: &FidelityConfig) -> FidelityKey {
    (f.dimension_divisor, f.frame_count, f.seed)
}

/// Everything that determines a [`CharacterizationRun`].
///
/// `RunSpec::tile_workers` is deliberately absent: the tile/wavefront
/// decomposition is worker-count invariant (the probe-merge contract),
/// so a run computed at any worker count serves every other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct RunKey {
    clip: &'static str,
    codec: CodecId,
    params: EncoderParams,
    fidelity: FidelityKey,
    cache_divisor: usize,
    model_pipeline: bool,
}

impl RunKey {
    fn of(spec: &RunSpec) -> Self {
        RunKey {
            clip: spec.clip,
            codec: spec.codec,
            params: spec.params,
            fidelity: fidelity_key(&spec.fidelity),
            cache_divisor: spec.cache_divisor,
            model_pipeline: spec.model_pipeline,
        }
    }

    /// Stable, human-readable key text for the persistent store. Any
    /// change here must come with a [`SCHEMA_VERSION`] bump.
    fn store_text(&self) -> String {
        format!(
            "{}|{:?}|crf{}-p{}-t{}-k{}|fid{}x{}s{:#x}|div{}|pipe{}",
            self.clip,
            self.codec,
            self.params.crf,
            self.params.preset,
            self.params.threads,
            self.params.keyint,
            self.fidelity.0,
            self.fidelity.1,
            self.fidelity.2,
            self.cache_divisor,
            self.model_pipeline,
        )
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ClipKey {
    clip: &'static str,
    fidelity: FidelityKey,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct WindowKey {
    clip: &'static str,
    codec: CodecId,
    params: EncoderParams,
    fidelity: FidelityKey,
    window: u64,
}

impl WindowKey {
    /// Stable key text for the persistent store's window layer.
    fn store_text(&self) -> String {
        format!(
            "{}|{:?}|crf{}-p{}-t{}-k{}|fid{}x{}s{:#x}|win{}",
            self.clip,
            self.codec,
            self.params.crf,
            self.params.preset,
            self.params.threads,
            self.params.keyint,
            self.fidelity.0,
            self.fidelity.1,
            self.fidelity.2,
            self.window,
        )
    }
}

/// Everything that determines a [`CapturedEncode`] — the spec minus
/// `cache_divisor` and `model_pipeline` (simulation-side knobs that
/// never reach the encoder) and minus `tile_workers` (worker-count
/// invariant): one capture serves every characterization of its encode
/// point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CaptureKey {
    clip: &'static str,
    codec: CodecId,
    params: EncoderParams,
    fidelity: FidelityKey,
}

impl CaptureKey {
    fn of(spec: &RunSpec) -> Self {
        CaptureKey {
            clip: spec.clip,
            codec: spec.codec,
            params: spec.params,
            fidelity: fidelity_key(&spec.fidelity),
        }
    }

    /// Stable key text for the persistent store's stream layer.
    fn store_text(&self) -> String {
        format!(
            "{}|{:?}|crf{}-p{}-t{}-k{}|fid{}x{}s{:#x}|stream",
            self.clip,
            self.codec,
            self.params.crf,
            self.params.preset,
            self.params.threads,
            self.params.keyint,
            self.fidelity.0,
            self.fidelity.1,
            self.fidelity.2,
        )
    }
}

/// A captured mid-run branch window: the records plus the number of
/// instructions the window actually covered.
///
/// The records sit behind an `Arc<[BranchRecord]>` so every consumer of
/// a cached window — the CBP study replays each one through four
/// predictors, possibly from several replay workers at once — shares a
/// single allocation instead of cloning a multi-million-record vector
/// per use.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchWindow {
    /// The captured branch records, in program order.
    pub records: Arc<[BranchRecord]>,
    /// Instructions the window actually covered (the MPKI denominator).
    pub instructions: u64,
}

// Hand-written serialization emitting exactly the wire bytes of the
// previous `(Vec<BranchRecord>, u64)` tuple representation — a sequence
// followed by an unsigned, no struct name tag — so windows persisted by
// existing stores load unchanged and no `SCHEMA_VERSION` bump is needed.
impl serde::Serialize for BranchWindow {
    fn serialize(&self, s: &mut serde::Serializer) {
        self.records[..].serialize(s);
        self.instructions.serialize(s);
    }
}

impl<'de> serde::Deserialize<'de> for BranchWindow {
    fn deserialize(d: &mut serde::Deserializer<'de>) -> Result<Self, serde::Error> {
        let records = Vec::<BranchRecord>::deserialize(d)?;
        let instructions = u64::deserialize(d)?;
        Ok(BranchWindow { records: records.into(), instructions })
    }
}

/// Instruction costs of one encode and of decoding its bitstream — the
/// decode-cost study's measurement, cached and persisted like runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct EncodeDecodeCost {
    /// Instructions retired by the encode.
    pub encode_instructions: u64,
    /// Instructions retired decoding the produced bitstream.
    pub decode_instructions: u64,
}

/// One cache entry: a per-key lock around the (eventually) computed
/// value. A racer for an in-flight key blocks on the slot lock instead
/// of recomputing; distinct keys never contend beyond the brief map
/// lookup.
type Slot<V> = Arc<Mutex<Option<Arc<V>>>>;

/// Locks a mutex, recovering from poison: a panic inside one compute
/// must not cascade into panics on every later lookup of that key. The
/// protected state is valid at any panic point (an empty or fully
/// written slot, or the map between operations), so the poison flag
/// carries no information here.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Looks up `key`, computing the value at most once per key. A failed
/// compute removes its map entry again so repeated failures cannot grow
/// the map, and a panicking compute neither poisons later lookups nor
/// leaves a dead slot behind a retry.
fn memo<K: Eq + Hash + Clone, V>(
    map: &Mutex<HashMap<K, Slot<V>>>,
    hits: &AtomicU64,
    misses: &AtomicU64,
    key: K,
    compute: impl FnOnce() -> Result<V, WorkbenchError>,
) -> Result<Arc<V>, WorkbenchError> {
    let slot = Arc::clone(lock_unpoisoned(map).entry(key.clone()).or_default());
    let mut guard = lock_unpoisoned(&slot);
    if let Some(v) = guard.as_ref() {
        hits.fetch_add(1, Ordering::Relaxed);
        return Ok(Arc::clone(v));
    }
    misses.fetch_add(1, Ordering::Relaxed);
    match compute() {
        Ok(v) => {
            let v = Arc::new(v);
            *guard = Some(Arc::clone(&v));
            Ok(v)
        }
        Err(e) => {
            // Drop the dead entry — but only if it is still ours; a
            // concurrent failure may already have replaced it.
            let mut m = lock_unpoisoned(map);
            if m.get(&key).is_some_and(|cur| Arc::ptr_eq(cur, &slot)) {
                m.remove(&key);
            }
            Err(e)
        }
    }
}

/// Hit/miss counters for the cache layers and the optional persistent
/// store (test observability — a hit proves no re-encode happened).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunCacheStats {
    /// Characterization-run cache hits.
    pub run_hits: u64,
    /// Characterization-run cache misses (computes; each is an encode
    /// unless the persistent store served it).
    pub run_misses: u64,
    /// Clip-synthesis cache hits.
    pub clip_hits: u64,
    /// Clip-synthesis cache misses (clips synthesized).
    pub clip_misses: u64,
    /// Branch-window cache hits.
    pub window_hits: u64,
    /// Branch-window cache misses (window captures, unless store-served).
    pub window_misses: u64,
    /// Encode/decode-cost cache hits.
    pub cost_hits: u64,
    /// Encode/decode-cost cache misses (encode+decode pairs, unless
    /// store-served).
    pub cost_misses: u64,
    /// Captured-encode cache hits (stream reused from memory).
    pub capture_hits: u64,
    /// Captured-encode cache misses (stream loaded from the store, or
    /// recorded by an encode).
    pub capture_misses: u64,
    /// Recording encodes actually performed — the capture layer is the
    /// only encode site, so this counts every encoder invocation in the
    /// process.
    pub encodes: u64,
    /// Event streams captured fresh (recorded rather than reloaded from
    /// memory or the store). Equal to [`RunCacheStats::encodes`] today;
    /// kept separate so warm-store assertions name the thing they mean.
    pub stream_captures: u64,
    /// Persistent-store hits (entries loaded from disk; no work done).
    pub store_hits: u64,
    /// Persistent-store misses (entries computed and written back).
    /// Zero when no store is attached.
    pub store_misses: u64,
    /// Corrupt or stale store entries quarantined and recomputed.
    pub store_quarantined: u64,
}

/// Memoizes captured encodes, characterization runs, synthesized
/// clips, CBP branch windows and encode/decode costs. Thread-safe;
/// share one instance per process via `Arc` (the
/// [`ExperimentConfig`](crate::experiments::ExperimentConfig) embeds
/// one and `Clone` shares it).
///
/// With [`RunCache::with_store`], the capture, run, window and cost
/// layers additionally extend across processes through a persistent
/// [`RunStore`].
#[derive(Default)]
pub struct RunCache {
    runs: Mutex<HashMap<RunKey, Slot<CharacterizationRun>>>,
    clips: Mutex<HashMap<ClipKey, Slot<Clip>>>,
    windows: Mutex<HashMap<WindowKey, Slot<BranchWindow>>>,
    costs: Mutex<HashMap<RunKey, Slot<EncodeDecodeCost>>>,
    captures: Mutex<HashMap<CaptureKey, Slot<CapturedEncode>>>,
    store: Option<Arc<RunStore>>,
    run_hits: AtomicU64,
    run_misses: AtomicU64,
    clip_hits: AtomicU64,
    clip_misses: AtomicU64,
    window_hits: AtomicU64,
    window_misses: AtomicU64,
    cost_hits: AtomicU64,
    cost_misses: AtomicU64,
    capture_hits: AtomicU64,
    capture_misses: AtomicU64,
    encodes: AtomicU64,
    stream_captures: AtomicU64,
}

impl std::fmt::Debug for RunCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunCache").field("stats", &self.stats()).finish()
    }
}

impl RunCache {
    /// A fresh, empty, in-memory-only cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh cache backed by a persistent store: capture, run, window
    /// and cost computes consult `store` before doing work and write
    /// results back, so a second process over the same specs performs
    /// zero encodes.
    pub fn with_store(store: Arc<RunStore>) -> Self {
        RunCache { store: Some(store), ..Self::default() }
    }

    /// The attached persistent store, if any.
    pub fn store(&self) -> Option<&Arc<RunStore>> {
        self.store.as_ref()
    }

    /// Snapshot of the hit/miss counters (cache layers + store).
    pub fn stats(&self) -> RunCacheStats {
        let store = self.store.as_deref().map(RunStore::stats).unwrap_or_default();
        RunCacheStats {
            run_hits: self.run_hits.load(Ordering::Relaxed),
            run_misses: self.run_misses.load(Ordering::Relaxed),
            clip_hits: self.clip_hits.load(Ordering::Relaxed),
            clip_misses: self.clip_misses.load(Ordering::Relaxed),
            window_hits: self.window_hits.load(Ordering::Relaxed),
            window_misses: self.window_misses.load(Ordering::Relaxed),
            cost_hits: self.cost_hits.load(Ordering::Relaxed),
            cost_misses: self.cost_misses.load(Ordering::Relaxed),
            capture_hits: self.capture_hits.load(Ordering::Relaxed),
            capture_misses: self.capture_misses.load(Ordering::Relaxed),
            encodes: self.encodes.load(Ordering::Relaxed),
            stream_captures: self.stream_captures.load(Ordering::Relaxed),
            store_hits: store.hits,
            store_misses: store.misses,
            store_quarantined: store.quarantined,
        }
    }

    /// Consults the store (if attached), computing and writing back on
    /// a miss — the shared shape of every persisted layer's compute.
    fn through_store<V>(
        &self,
        kind: &str,
        key_text: &str,
        compute: impl FnOnce() -> Result<V, WorkbenchError>,
    ) -> Result<V, WorkbenchError>
    where
        V: serde::Serialize + for<'de> serde::Deserialize<'de>,
    {
        if let Some(store) = &self.store {
            if let Some(v) = store.get::<V>(kind, key_text) {
                return Ok(v);
            }
        }
        let v = compute()?;
        if let Some(store) = &self.store {
            store.put(kind, key_text, &v);
        }
        Ok(v)
    }

    /// The synthesized clip for `(name, fidelity)`, computing it on the
    /// first request.
    ///
    /// # Errors
    ///
    /// Returns [`WorkbenchError::Video`] for unknown clip names.
    pub fn clip(
        &self,
        name: &'static str,
        fidelity: &FidelityConfig,
    ) -> Result<Arc<Clip>, WorkbenchError> {
        let key = ClipKey { clip: name, fidelity: fidelity_key(fidelity) };
        memo(&self.clips, &self.clip_hits, &self.clip_misses, key, || {
            Ok(vstress_video::vbench::clip(name)?.synthesize(fidelity))
        })
    }

    /// The shared captured encode for `spec`'s (clip, codec, params,
    /// fidelity) point — recorded at most once per key and persisted in
    /// the store's `stream` layer. `sink`, used only when this call
    /// ends up performing the recording encode, streams chunks to a
    /// concurrent consumer as they fill.
    fn capture(
        &self,
        spec: &RunSpec,
        sink: Option<ChunkTx>,
    ) -> Result<Arc<CapturedEncode>, WorkbenchError> {
        let key = CaptureKey::of(spec);
        memo(&self.captures, &self.capture_hits, &self.capture_misses, key, || {
            self.through_store(KIND_STREAM, &key.store_text(), || {
                let clip = self.clip(spec.clip, &spec.fidelity)?;
                self.encodes.fetch_add(1, Ordering::Relaxed);
                self.stream_captures.fetch_add(1, Ordering::Relaxed);
                capture_encode_with(spec, &clip, sink)
            })
        })
    }

    /// The characterization of `spec`, derived from the shared capture
    /// of its encode point — encoding only on the first request for
    /// that point, or never, when the persistent store already holds
    /// the run or its stream.
    ///
    /// # Errors
    ///
    /// Propagates [`WorkbenchError`] from clip synthesis or the encode.
    pub fn run(&self, spec: &RunSpec) -> Result<Arc<CharacterizationRun>, WorkbenchError> {
        let key = RunKey::of(spec);
        memo(&self.runs, &self.run_hits, &self.run_misses, key, || {
            self.through_store(KIND_RUN, &key.store_text(), || self.run_via_capture(spec))
        })
    }

    /// Computes a characterization from the spec's shared capture. For
    /// pipeline specs whose capture is not yet available, the recording
    /// encode and the core-model simulation overlap: the recorder's
    /// sink hands each ~1 MiB chunk to a consumer thread over a bounded
    /// channel while the encode keeps producing the next one. If the
    /// capture turns out to be served from memory or the store instead
    /// (nothing flowed through the channel), the stream is replayed
    /// serially.
    fn run_via_capture(&self, spec: &RunSpec) -> Result<CharacterizationRun, WorkbenchError> {
        if !spec.model_pipeline {
            let cap = self.capture(spec, None)?;
            return Ok(characterize_from_capture(spec, &cap));
        }
        std::thread::scope(|scope| {
            let (tx, rx) = chunk_channel(CAPTURE_CHANNEL_CHUNKS);
            let divisor = spec.cache_divisor;
            let consumer = scope.spawn(move || {
                let mut core = CoreModel::broadwell_scaled(divisor);
                let mut chunks = 0usize;
                while let Some(chunk) = rx.recv() {
                    core.consume_chunk(&chunk);
                    chunks += 1;
                }
                (core, chunks)
            });
            let cap = self.capture(spec, Some(tx));
            // The sink is dropped even on a memo/store hit (the unused
            // closure owns it), so the consumer always drains and joins.
            let (core, consumed) = match consumer.join() {
                Ok(v) => v,
                Err(p) => std::panic::resume_unwind(p),
            };
            let cap = cap?;
            if consumed == cap.stream.chunks().len() {
                // Our sink fed the whole recording: the consumer's core
                // has already simulated exactly this stream.
                Ok(run_from_parts(spec, &cap, core))
            } else {
                // The capture came from elsewhere (memory or store) and
                // the channel stayed empty; replay its stream serially.
                Ok(characterize_from_capture(spec, &cap))
            }
        })
    }

    /// The CBP study's mid-run branch window for one encode
    /// configuration: a centered window of at most `window` instructions
    /// sliced out of the shared capture's event stream — no dedicated
    /// encode pass, and zero encodes when the stream is store-served.
    ///
    /// # Errors
    ///
    /// Propagates [`WorkbenchError`] from clip synthesis or the encode.
    pub fn branch_window(
        &self,
        spec: &RunSpec,
        window: u64,
    ) -> Result<Arc<BranchWindow>, WorkbenchError> {
        let key = WindowKey {
            clip: spec.clip,
            codec: spec.codec,
            params: spec.params,
            fidelity: fidelity_key(&spec.fidelity),
            window,
        };
        memo(&self.windows, &self.window_hits, &self.window_misses, key, || {
            self.through_store(KIND_WINDOW, &key.store_text(), || {
                let cap = self.capture(spec, None)?;
                let total = cap.mix.total();
                let mut probe = BranchWindowProbe::mid_run(total, window.min(total));
                cap.stream.replay(&mut probe);
                let captured = probe.window_retired().max(1);
                Ok(BranchWindow { records: probe.into_records().into(), instructions: captured })
            })
        })
    }

    /// The decode-cost study's measurement for `spec`: instructions to
    /// encode the clip (the capture's mix total), and to decode the
    /// capture's bitstream.
    ///
    /// # Errors
    ///
    /// Propagates [`WorkbenchError`] from clip synthesis, the encode or
    /// the decode.
    pub fn encode_decode_cost(
        &self,
        spec: &RunSpec,
    ) -> Result<Arc<EncodeDecodeCost>, WorkbenchError> {
        let key = RunKey::of(spec);
        memo(&self.costs, &self.cost_hits, &self.cost_misses, key, || {
            self.through_store(KIND_COST, &format!("{}|cost", key.store_text()), || {
                let cap = self.capture(spec, None)?;
                let mut pd = CountingProbe::new();
                Decoder::new().decode(&cap.bitstream, &mut pd)?;
                Ok(EncodeDecodeCost {
                    encode_instructions: cap.mix.total(),
                    decode_instructions: pd.mix().total(),
                })
            })
        })
    }
}

/// The default worker-pool size for batch executors and the serve
/// pipeline: every available core (1 when parallelism is undetectable).
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Characterizes every spec, in input order, on up to `threads` worker
/// threads, memoizing through `cache`.
///
/// Results are bit-identical to a serial `characterize` loop at any
/// thread count (each worker owns its probes and core model).
///
/// # Errors
///
/// Returns the first-by-index [`WorkbenchError`]; workers stop claiming
/// specs once one fails.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn run_all(
    cache: &RunCache,
    threads: usize,
    specs: &[RunSpec],
) -> Result<Vec<Arc<CharacterizationRun>>, WorkbenchError> {
    run_ordered(specs.len(), threads, |i| cache.run(&specs[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> RunSpec {
        RunSpec::quick("cat", CodecId::X264, EncoderParams::new(30, 5))
    }

    #[test]
    fn run_cache_hits_skip_the_encode() {
        let cache = RunCache::new();
        let a = cache.run(&spec()).unwrap();
        let b = cache.run(&spec()).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "a hit must return the cached run");
        let s = cache.stats();
        assert_eq!((s.run_hits, s.run_misses), (1, 1));
        assert_eq!((s.clip_hits, s.clip_misses), (0, 1));
        assert_eq!((s.store_hits, s.store_misses), (0, 0), "no store attached");
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = RunCache::new();
        let pipeline = cache.run(&spec()).unwrap();
        let counting = cache.run(&spec().counting_only()).unwrap();
        assert!(pipeline.core.instructions > 0);
        assert_eq!(counting.core.instructions, 0);
        let s = cache.stats();
        assert_eq!(s.run_misses, 2);
        // Both runs derive from one shared capture: a single encode.
        assert_eq!((s.capture_hits, s.capture_misses), (1, 1));
        assert_eq!(s.encodes, 1);
        assert_eq!(s.stream_captures, 1);
    }

    #[test]
    fn run_all_matches_serial_and_dedupes() {
        let specs = vec![spec(), spec().counting_only(), spec()];
        let cache = RunCache::new();
        let runs = run_all(&cache, 2, &specs).unwrap();
        assert_eq!(runs.len(), 3);
        let serial = crate::workbench::characterize(&specs[0]).unwrap();
        assert_eq!(runs[0].core.instructions, serial.core.instructions);
        assert_eq!(runs[0].total_bits, serial.total_bits);
        // Specs 0 and 2 share a key: at most 2 encodes happened.
        assert_eq!(cache.stats().run_misses, 2);
    }

    #[test]
    fn failed_computes_do_not_leak_map_entries() {
        let map: Mutex<HashMap<u32, Slot<u32>>> = Mutex::new(HashMap::new());
        let (hits, misses) = (AtomicU64::new(0), AtomicU64::new(0));
        let fail =
            || Err(WorkbenchError::Video(vstress_video::VideoError::UnknownClip("nope".into())));
        for _ in 0..3 {
            assert!(memo(&map, &hits, &misses, 7u32, fail).is_err());
            assert!(map.lock().unwrap().is_empty(), "error path must remove the slot");
        }
        assert_eq!(misses.load(Ordering::Relaxed), 3, "every retry recomputes");
        // After the failures, a success for the same key still lands.
        let v = memo(&map, &hits, &misses, 7u32, || Ok(42)).unwrap();
        assert_eq!(*v, 42);
        assert_eq!(map.lock().unwrap().len(), 1);
    }

    #[test]
    fn panicking_compute_does_not_poison_later_lookups() {
        let map: Mutex<HashMap<u32, Slot<u32>>> = Mutex::new(HashMap::new());
        let (hits, misses) = (AtomicU64::new(0), AtomicU64::new(0));
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = memo(&map, &hits, &misses, 7u32, || panic!("boom"));
        }));
        assert!(panicked.is_err(), "the panic must propagate to the caller");
        // The slot mutex is now poisoned; a later lookup of the same key
        // must recover, recompute and succeed — not cascade the panic.
        let v = memo(&map, &hits, &misses, 7u32, || Ok(5)).unwrap();
        assert_eq!(*v, 5);
        // And a plain hit afterwards still works.
        let v = memo(&map, &hits, &misses, 7u32, || unreachable!("must hit")).unwrap();
        assert_eq!(*v, 5);
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn encode_decode_cost_is_cached() {
        let cache = RunCache::new();
        let a = cache.encode_decode_cost(&spec()).unwrap();
        let b = cache.encode_decode_cost(&spec()).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(a.encode_instructions > a.decode_instructions);
        let s = cache.stats();
        assert_eq!((s.cost_hits, s.cost_misses), (1, 1));
    }
}
