//! Execution-time modelling.

/// Clock frequency of the paper's machine (Xeon E5-2650 v4), in GHz.
pub const CLOCK_GHZ: f64 = 2.8;

/// Converts modelled core cycles to seconds on the paper's machine.
pub fn cycles_to_seconds(cycles: f64) -> f64 {
    cycles / (CLOCK_GHZ * 1e9)
}

/// Converts an instruction count to seconds at an assumed IPC — the cheap
/// runtime model used where the paper only needs relative execution times
/// and a full pipeline simulation would be wasteful.
pub fn instructions_to_seconds(instructions: u64, ipc: f64) -> f64 {
    if ipc <= 0.0 {
        return 0.0;
    }
    cycles_to_seconds(instructions as f64 / ipc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_conversion() {
        assert!((cycles_to_seconds(2.8e9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn instruction_conversion() {
        let s = instructions_to_seconds(5_600_000_000, 2.0);
        assert!((s - 1.0).abs() < 1e-12);
        assert_eq!(instructions_to_seconds(100, 0.0), 0.0);
    }
}
