//! Deterministic multi-core scheduling of encoder task graphs — the
//! engine behind the paper's thread-scalability study (Figs. 12–16).
//!
//! The instrumented encoders measure the real instruction cost of every
//! unit of parallel work and emit, per codec, the dependency structure
//! their threading design implies
//! ([`vstress_codecs::taskgraph::build_task_graph`]). This crate
//! schedules those graphs on `n` cores with a critical-path-priority list
//! scheduler and reports makespan, speedup, per-core utilisation and
//! imbalance. A shared-LLC [`ContentionModel`] translates schedule
//! concurrency and imbalance into the backend-bound inflation the paper
//! observes for x265 (Fig. 16).
//!
//! ```
//! use vstress_codecs::taskgraph::{FrameTaskTrace, TaskTrace, build_task_graph};
//! use vstress_codecs::CodecId;
//! use vstress_sched::schedule;
//!
//! let trace = TaskTrace {
//!     frames: (0..4)
//!         .map(|_| FrameTaskTrace {
//!             sb_rows: vec![10_000; 8],
//!             lookahead: 2_000,
//!             filter: 1_000,
//!             ..FrameTaskTrace::default()
//!         })
//!         .collect(),
//! };
//! let g = build_task_graph(CodecId::SvtAv1, &trace);
//! let s1 = schedule(&g, 1);
//! let s8 = schedule(&g, 8);
//! assert!(s1.makespan > s8.makespan, "more cores must not slow things down");
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

use vstress_codecs::taskgraph::TaskGraph;

/// Result of scheduling a task graph on a fixed number of cores.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Schedule {
    /// Number of cores used.
    pub cores: usize,
    /// Completion time of the last task (instruction units).
    pub makespan: u64,
    /// Busy time per core.
    pub per_core_busy: Vec<u64>,
    /// Start time of each task (by task id).
    pub start_times: Vec<u64>,
}

impl Schedule {
    /// Mean number of simultaneously busy cores over the makespan.
    pub fn avg_concurrency(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        self.per_core_busy.iter().sum::<u64>() as f64 / self.makespan as f64
    }

    /// Load imbalance: busiest core's share over the mean share (1.0 =
    /// perfectly even). The paper attributes x265's poor scaling and
    /// backend growth to exactly this quantity.
    pub fn imbalance(&self) -> f64 {
        let busy: Vec<u64> = self.per_core_busy.clone();
        let total: u64 = busy.iter().sum();
        if total == 0 || busy.is_empty() {
            return 1.0;
        }
        let mean = total as f64 / busy.len() as f64;
        let max = *busy.iter().max().expect("nonempty") as f64;
        (max / mean).max(1.0)
    }

    /// Fraction of core-time spent idle (blocked on dependencies).
    pub fn idle_fraction(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        let capacity = self.makespan as f64 * self.cores as f64;
        1.0 - self.per_core_busy.iter().sum::<u64>() as f64 / capacity
    }
}

/// Schedules `graph` on `cores` cores with critical-path list scheduling.
///
/// Tasks become ready when all dependencies finish; among ready tasks the
/// one with the longest downstream critical path runs first. Tasks marked
/// `main_thread_only` only run on core 0 (the x265 lookahead model).
///
/// ```
/// use vstress_codecs::taskgraph::{Task, TaskGraph, TaskKind};
/// use vstress_sched::schedule;
///
/// // Two independent unit tasks: two cores halve the makespan.
/// let mut g = TaskGraph::default();
/// for id in 0..2 {
///     g.tasks.push(Task {
///         id, cost: 100, kind: TaskKind::CodeRow, frame: 0,
///         deps: vec![], main_thread_only: false,
///     });
/// }
/// assert_eq!(schedule(&g, 1).makespan, 200);
/// assert_eq!(schedule(&g, 2).makespan, 100);
/// ```
///
/// # Panics
///
/// Panics if `cores` is zero.
pub fn schedule(graph: &TaskGraph, cores: usize) -> Schedule {
    assert!(cores > 0, "need at least one core");
    let n = graph.tasks.len();
    // Downstream critical path per task (priority).
    let mut downstream = vec![0u64; n];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for t in &graph.tasks {
        for &d in &t.deps {
            dependents[d].push(t.id);
        }
    }
    for t in graph.tasks.iter().rev() {
        let down = dependents[t.id].iter().map(|&s| downstream[s]).max().unwrap_or(0);
        downstream[t.id] = down + t.cost;
    }

    // Event-driven simulation: a task is *released* when every dependency
    // has actually finished; free cores pick the released task with the
    // longest downstream path. This avoids the list-scheduling anomaly of
    // reserving a core for a task whose dependencies are still running.
    let mut unmet: Vec<usize> = graph.tasks.iter().map(|t| t.deps.len()).collect();
    let mut ready: Vec<usize> = (0..n).filter(|&i| unmet[i] == 0).collect();
    let mut core_busy_until: Vec<Option<(u64, usize)>> = vec![None; cores];
    let mut busy = vec![0u64; cores];
    let mut start_times = vec![0u64; n];
    let mut finished = 0usize;
    let mut now = 0u64;
    let mut makespan = 0u64;

    while finished < n {
        // Assign released tasks to free cores.
        loop {
            let mut assigned = false;
            // Core 0 first so pinned tasks are never starved by it taking
            // unpinned work while a pinned task waits.
            for core in 0..cores {
                if core_busy_until[core].is_some() {
                    continue;
                }
                let candidate = ready
                    .iter()
                    .enumerate()
                    .filter(|(_, &t)| core == 0 || !graph.tasks[t].main_thread_only)
                    .max_by(|(_, &a), (_, &b)| {
                        // Pinned tasks take precedence on core 0.
                        let pa = graph.tasks[a].main_thread_only && core == 0;
                        let pb = graph.tasks[b].main_thread_only && core == 0;
                        pa.cmp(&pb).then(downstream[a].cmp(&downstream[b])).then(b.cmp(&a))
                    })
                    .map(|(i, &t)| (i, t));
                if let Some((ri, task_id)) = candidate {
                    ready.swap_remove(ri);
                    start_times[task_id] = now;
                    let finish = now + graph.tasks[task_id].cost;
                    core_busy_until[core] = Some((finish, task_id));
                    busy[core] += graph.tasks[task_id].cost;
                    assigned = true;
                }
            }
            if !assigned {
                break;
            }
        }

        // Advance to the next completion.
        let next = core_busy_until
            .iter()
            .filter_map(|c| c.map(|(f, _)| f))
            .min()
            .expect("some task must be running while unfinished tasks remain");
        now = next;
        makespan = makespan.max(now);
        for slot in core_busy_until.iter_mut() {
            if let Some((f, task_id)) = *slot {
                if f == now {
                    *slot = None;
                    finished += 1;
                    for &s in &dependents[task_id] {
                        unmet[s] -= 1;
                        if unmet[s] == 0 {
                            ready.push(s);
                        }
                    }
                }
            }
        }
    }

    Schedule { cores, makespan, per_core_busy: busy, start_times }
}

impl Schedule {
    /// Renders a coarse per-core timeline (one lane per core, `#` = busy),
    /// for eyeballing pipeline fill, serial gaps and imbalance.
    ///
    /// `width` is the number of character columns the makespan maps onto.
    pub fn render_timeline(&self, graph: &TaskGraph, width: usize) -> String {
        let width = width.max(8);
        let mut lanes = vec![vec![b'.'; width]; self.cores];
        // Reconstruct core assignment: greedily place each task on the
        // core whose busy intervals it extends (the scheduler is
        // deterministic, so start times identify the layout).
        let mut core_free = vec![0u64; self.cores];
        let mut order: Vec<usize> = (0..graph.tasks.len()).collect();
        order.sort_by_key(|&i| self.start_times[i]);
        let span = self.makespan.max(1);
        for &id in &order {
            let start = self.start_times[id];
            let cost = graph.tasks[id].cost;
            let core = if graph.tasks[id].main_thread_only {
                0
            } else {
                (0..self.cores).find(|&c| core_free[c] <= start).unwrap_or(0)
            };
            core_free[core] = start + cost;
            let a = (start as u128 * width as u128 / span as u128) as usize;
            let b = (((start + cost) as u128 * width as u128).div_ceil(span as u128) as usize)
                .min(width);
            for cell in &mut lanes[core][a..b.max(a + 1).min(width)] {
                *cell = b'#';
            }
        }
        let mut out = String::new();
        for (c, lane) in lanes.iter().enumerate() {
            out.push_str(&format!("core {c}: "));
            out.push_str(std::str::from_utf8(lane).expect("ascii"));
            out.push('\n');
        }
        out
    }
}

/// Speedup of `cores` cores over one core.
pub fn speedup(graph: &TaskGraph, cores: usize) -> f64 {
    let serial = schedule(graph, 1).makespan;
    let parallel = schedule(graph, cores).makespan;
    if parallel == 0 {
        1.0
    } else {
        serial as f64 / parallel as f64
    }
}

/// The full 1..=`max_cores` speedup curve.
pub fn speedup_curve(graph: &TaskGraph, max_cores: usize) -> Vec<f64> {
    (1..=max_cores).map(|c| speedup(graph, c)).collect()
}

/// Shared-LLC contention: how much a schedule inflates memory-bound
/// backend stalls.
///
/// Two mechanisms, both visible in the paper's Fig. 16:
///
/// * even concurrency mildly pressures the shared LLC
///   (`concurrency_weight`), and
/// * *imbalanced* schedules (x265: a loaded main thread racing helper
///   threads) interleave antagonistic access streams, which hurts far
///   more (`imbalance_weight`).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ContentionModel {
    /// Backend inflation per unit of extra average concurrency.
    pub concurrency_weight: f64,
    /// Backend inflation per unit of imbalance above 1.
    pub imbalance_weight: f64,
}

impl Default for ContentionModel {
    fn default() -> Self {
        ContentionModel { concurrency_weight: 0.012, imbalance_weight: 0.12 }
    }
}

impl ContentionModel {
    /// Imbalance below this threshold is considered benign (ordinary
    /// wavefront ramp-up/down, not antagonistic sharing).
    pub const IMBALANCE_FLOOR: f64 = 1.5;

    /// Multiplier applied to memory-bound backend slots under `sched`.
    pub fn backend_inflation(&self, sched: &Schedule) -> f64 {
        let conc = (sched.avg_concurrency() - 1.0).max(0.0);
        let imb = (sched.imbalance() - Self::IMBALANCE_FLOOR).max(0.0);
        // Imbalance only matters when helpers actually run concurrently.
        let gate = if sched.cores > 1 && sched.avg_concurrency() > 1.05 { 1.0 } else { 0.0 };
        1.0 + self.concurrency_weight * conc + self.imbalance_weight * imb * gate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstress_codecs::taskgraph::{build_task_graph, FrameTaskTrace, TaskTrace};
    use vstress_codecs::CodecId;

    fn trace(frames: usize, rows: usize, row_cost: u64) -> TaskTrace {
        TaskTrace {
            frames: (0..frames)
                .map(|_| FrameTaskTrace {
                    sb_rows: vec![row_cost; rows],
                    lookahead: row_cost / 2,
                    filter: row_cost / 4,
                    ..FrameTaskTrace::default()
                })
                .collect(),
        }
    }

    #[test]
    fn one_core_makespan_equals_total_cost() {
        let g = build_task_graph(CodecId::SvtAv1, &trace(4, 6, 1000));
        let s = schedule(&g, 1);
        assert_eq!(s.makespan, g.total_cost());
        assert_eq!(s.per_core_busy, vec![g.total_cost()]);
        assert!((s.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn makespan_bounded_by_critical_path_and_total() {
        for codec in CodecId::ALL {
            let g = build_task_graph(codec, &trace(5, 8, 900));
            for cores in [1, 2, 4, 8, 16] {
                let s = schedule(&g, cores);
                assert!(s.makespan >= g.critical_path(), "{codec} {cores} cores");
                assert!(s.makespan <= g.total_cost(), "{codec} {cores} cores");
            }
        }
    }

    #[test]
    fn makespan_monotone_in_cores() {
        // List scheduling has no anomaly here because priorities are
        // critical-path based and costs uniform per kind.
        for codec in CodecId::ALL {
            let g = build_task_graph(codec, &trace(6, 8, 1200));
            let mut prev = schedule(&g, 1).makespan;
            for cores in 2..=8 {
                let s = schedule(&g, cores);
                assert!(
                    s.makespan <= prev + prev / 8,
                    "{codec}: {cores} cores regressed {prev} -> {}",
                    s.makespan
                );
                prev = s.makespan;
            }
        }
    }

    #[test]
    fn svt_scales_best_x265_scales_worst() {
        // The paper's Fig. 12–15 ordering at 8 threads.
        let t = trace(8, 8, 10_000);
        let svt = speedup(&build_task_graph(CodecId::SvtAv1, &t), 8);
        let x264 = speedup(&build_task_graph(CodecId::X264, &t), 8);
        let aom = speedup(&build_task_graph(CodecId::Libaom, &t), 8);
        let x265 = speedup(&build_task_graph(CodecId::X265, &t), 8);
        assert!(svt > x264, "svt {svt} vs x264 {x264}");
        assert!(svt > aom, "svt {svt} vs aom {aom}");
        assert!(x264 > x265, "x264 {x264} vs x265 {x265}");
        assert!(svt > 4.0, "svt should approach the paper's ~6x: {svt}");
        assert!(x265 < 2.5, "x265 should stall near the paper's ~1.3x: {x265}");
    }

    #[test]
    fn speedup_curve_is_nondecreasing_for_svt() {
        let g = build_task_graph(CodecId::SvtAv1, &trace(8, 8, 10_000));
        let curve = speedup_curve(&g, 8);
        assert_eq!(curve.len(), 8);
        assert!((curve[0] - 1.0).abs() < 1e-9);
        for w in curve.windows(2) {
            assert!(w[1] >= w[0] * 0.95, "curve dipped: {curve:?}");
        }
    }

    #[test]
    fn x265_schedule_is_imbalanced() {
        let t = trace(8, 8, 10_000);
        let x265 = schedule(&build_task_graph(CodecId::X265, &t), 8);
        let svt = schedule(&build_task_graph(CodecId::SvtAv1, &t), 8);
        assert!(
            x265.imbalance() > svt.imbalance(),
            "x265 {} vs svt {}",
            x265.imbalance(),
            svt.imbalance()
        );
    }

    #[test]
    fn contention_inflates_x265_backend_most() {
        let t = trace(8, 8, 10_000);
        let model = ContentionModel::default();
        let infl = |codec| model.backend_inflation(&schedule(&build_task_graph(codec, &t), 8));
        let x265 = infl(CodecId::X265);
        let svt = infl(CodecId::SvtAv1);
        let x264 = infl(CodecId::X264);
        assert!(x265 > svt && x265 > x264, "x265 {x265} svt {svt} x264 {x264}");
        assert!(svt < 1.15, "even schedules stay near 1.0: {svt}");
    }

    #[test]
    fn single_core_has_no_contention() {
        let t = trace(4, 4, 100);
        let model = ContentionModel::default();
        let s = schedule(&build_task_graph(CodecId::X265, &t), 1);
        assert!((model.backend_inflation(&s) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn start_times_respect_dependencies() {
        let g = build_task_graph(CodecId::X264, &trace(3, 5, 700));
        let s = schedule(&g, 4);
        for task in &g.tasks {
            for &d in &task.deps {
                let dep_end = s.start_times[d] + g.tasks[d].cost;
                assert!(
                    s.start_times[task.id] >= dep_end,
                    "task {} started before dep {d} finished",
                    task.id
                );
            }
        }
    }

    #[test]
    fn timeline_renders_one_lane_per_core() {
        let g = build_task_graph(CodecId::SvtAv1, &trace(3, 4, 1000));
        let s = schedule(&g, 4);
        let tl = s.render_timeline(&g, 40);
        assert_eq!(tl.lines().count(), 4);
        assert!(tl.contains("core 0: "));
        assert!(tl.contains('#'), "some busy time must render");
        // A serial x265 schedule shows an (almost) fully busy lane 0.
        let gx = build_task_graph(CodecId::X265, &trace(3, 4, 1000));
        let sx = schedule(&gx, 4);
        let tlx = sx.render_timeline(&gx, 40);
        let lane0 = tlx.lines().next().unwrap();
        let busy0 = lane0.matches('#').count();
        assert!(busy0 > 25, "x265 main lane should be mostly busy: {tlx}");
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let g = build_task_graph(CodecId::X264, &trace(1, 2, 10));
        let _ = schedule(&g, 0);
    }
}

#[cfg(test)]
mod shape_checks {
    use super::*;
    use vstress_codecs::taskgraph::{build_task_graph, FrameTaskTrace, TaskTrace};
    use vstress_codecs::CodecId;

    #[test]
    fn print_speedup_curves() {
        let t = TaskTrace {
            frames: (0..8)
                .map(|_| FrameTaskTrace {
                    sb_rows: vec![10_000; 8],
                    lookahead: 5_000,
                    filter: 2_500,
                    ..FrameTaskTrace::default()
                })
                .collect(),
        };
        for codec in CodecId::ALL {
            let g = build_task_graph(codec, &t);
            let curve = speedup_curve(&g, 8);
            let s8 = schedule(&g, 8);
            eprintln!(
                "{:<12} curve={:?} imb={:.2} conc={:.2}",
                codec.name(),
                curve.iter().map(|v| (v * 100.0).round() / 100.0).collect::<Vec<_>>(),
                s8.imbalance(),
                s8.avg_concurrency()
            );
        }
    }
}
