//! Property-based tests of scheduler invariants on arbitrary task graphs.

use proptest::prelude::*;
use vstress_codecs::taskgraph::{
    build_task_graph, FrameTaskTrace, Task, TaskGraph, TaskKind, TaskTrace,
};
use vstress_codecs::CodecId;
use vstress_sched::{schedule, speedup};

/// Builds a random layered DAG (deps always point backwards).
fn arbitrary_graph(seed: u64, tasks: usize, max_deps: usize, pin_some: bool) -> TaskGraph {
    let mut x = seed | 1;
    let mut rng = move || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        x >> 16
    };
    let mut g = TaskGraph::default();
    for id in 0..tasks {
        let cost = rng() % 1000 + 1;
        let dep_count = if id == 0 { 0 } else { (rng() as usize) % (max_deps + 1) };
        let mut deps: Vec<usize> = (0..dep_count).map(|_| (rng() as usize) % id).collect();
        deps.sort_unstable();
        deps.dedup();
        let pinned = pin_some && rng() % 10 == 0;
        g.tasks.push(Task {
            id,
            cost,
            kind: TaskKind::CodeRow,
            frame: 0,
            deps,
            main_thread_only: pinned,
        });
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Makespan is bracketed by the critical path (below) and the serial
    /// cost (above) for any DAG and core count.
    #[test]
    fn makespan_bounds(
        seed in any::<u64>(),
        tasks in 1usize..120,
        cores in 1usize..12,
        pin in any::<bool>(),
    ) {
        let g = arbitrary_graph(seed, tasks, 3, pin);
        let s = schedule(&g, cores);
        prop_assert!(s.makespan >= g.critical_path());
        prop_assert!(s.makespan <= g.total_cost());
        // Work conservation: busy time equals total cost.
        prop_assert_eq!(s.per_core_busy.iter().sum::<u64>(), g.total_cost());
    }

    /// One core serializes exactly.
    #[test]
    fn single_core_is_serial(seed in any::<u64>(), tasks in 1usize..80) {
        let g = arbitrary_graph(seed, tasks, 2, false);
        let s = schedule(&g, 1);
        prop_assert_eq!(s.makespan, g.total_cost());
        prop_assert!((s.imbalance() - 1.0).abs() < 1e-12);
    }

    /// Start times respect dependencies for any graph.
    #[test]
    fn dependencies_respected(seed in any::<u64>(), tasks in 2usize..100, cores in 1usize..8) {
        let g = arbitrary_graph(seed, tasks, 4, true);
        let s = schedule(&g, cores);
        for t in &g.tasks {
            for &d in &t.deps {
                prop_assert!(
                    s.start_times[t.id] >= s.start_times[d] + g.tasks[d].cost,
                    "task {} started before dep {}",
                    t.id, d
                );
            }
        }
    }

    /// Speedup never exceeds the core count and never falls below ~1.
    #[test]
    fn speedup_is_physical(seed in any::<u64>(), tasks in 1usize..100, cores in 1usize..10) {
        let g = arbitrary_graph(seed, tasks, 3, false);
        let su = speedup(&g, cores);
        prop_assert!(su <= cores as f64 + 1e-9, "speedup {} on {} cores", su, cores);
        prop_assert!(su >= 0.999, "speedup {}", su);
    }

    /// Scheduling is deterministic.
    #[test]
    fn scheduling_is_deterministic(seed in any::<u64>(), tasks in 1usize..80, cores in 1usize..8) {
        let g = arbitrary_graph(seed, tasks, 3, true);
        let a = schedule(&g, cores);
        let b = schedule(&g, cores);
        prop_assert_eq!(a, b);
    }

    /// Every codec's generated graph preserves total measured work and is
    /// schedulable at any core count.
    #[test]
    fn codec_graphs_are_schedulable(
        frames in 1usize..6,
        rows in 1usize..8,
        cost in 1u64..10_000,
        cores in 1usize..9,
    ) {
        let trace = TaskTrace {
            frames: (0..frames)
                .map(|_| FrameTaskTrace {
                    sb_rows: vec![cost; rows],
                    lookahead: cost / 2,
                    filter: cost / 3,
                    ..FrameTaskTrace::default()
                })
                .collect(),
        };
        for codec in CodecId::ALL {
            let g = build_task_graph(codec, &trace);
            prop_assert_eq!(g.total_cost(), trace.total_instructions(), "{}", codec);
            let s = schedule(&g, cores);
            prop_assert!(s.makespan >= g.critical_path());
        }
    }
}
