//! `vstress-bench` — the machine-readable perf-trajectory harness.
//!
//! ```text
//! vstress-bench                      # full run, writes BENCH_0003.json
//! vstress-bench --quick              # CI mode: shorter sampling windows
//! vstress-bench --out path.json      # write the report elsewhere
//! ```
//!
//! Times the leaf pixel kernels (interior and border paths separately),
//! motion search, and a full quick-profile encode, then emits one JSON
//! report (`ns/op`, `pixels/s`, wall time, git revision) so every PR can
//! be compared against the committed trajectory. Human-readable lines go
//! to stderr; the JSON artifact is the contract.

use std::hint::black_box;
use std::time::Instant;
use vstress::codecs::blocks::BlockRect;
use vstress::codecs::kernels;
use vstress::codecs::mc::{motion_compensate, MotionVector};
use vstress::codecs::mesearch::{motion_search, MeScratch, MeSettings};
use vstress::experiments::{profile, ExperimentConfig};
use vstress::trace::NullProbe;
use vstress::video::Plane;

/// One timed microbenchmark.
struct Sample {
    name: &'static str,
    iters: u64,
    ns_per_op: f64,
    /// Pixels processed per op (0 when the metric is not pixel-shaped).
    pixels_per_op: u64,
}

impl Sample {
    fn mpixels_per_s(&self) -> f64 {
        if self.pixels_per_op == 0 || self.ns_per_op == 0.0 {
            0.0
        } else {
            self.pixels_per_op as f64 / self.ns_per_op * 1000.0
        }
    }
}

/// Runs `f` repeatedly for roughly `target_ms`, returning the sample.
fn time_it(name: &'static str, pixels_per_op: u64, target_ms: u64, mut f: impl FnMut()) -> Sample {
    // Warm up and calibrate the batch size on a short probe run.
    let probe_start = Instant::now();
    let mut probe_iters = 0u64;
    while probe_start.elapsed().as_millis() < 10 || probe_iters < 3 {
        f();
        probe_iters += 1;
    }
    let ns_estimate = (probe_start.elapsed().as_nanos() as f64 / probe_iters as f64).max(1.0);
    let iters = ((target_ms as f64 * 1e6) / ns_estimate).ceil().max(1.0) as u64;
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let ns_per_op = start.elapsed().as_nanos() as f64 / iters as f64;
    let s = Sample { name, iters, ns_per_op, pixels_per_op };
    eprintln!(
        "vstress-bench: {:<28} {:>12.1} ns/op {:>10.1} Mpx/s  ({} iters)",
        s.name,
        s.ns_per_op,
        s.mpixels_per_s(),
        s.iters
    );
    s
}

/// A deterministic textured plane (same terrain as the mesearch tests).
fn textured(w: usize, h: usize, shift: usize) -> Plane {
    let mut p = Plane::new(w, h, 0).unwrap();
    for y in 0..h {
        for x in 0..w {
            let s = (x + shift) as f64;
            let fy = y as f64;
            let v = 128.0
                + 58.0 * (s * 0.19).sin()
                + 38.0 * (fy * 0.23 + s * 0.07).sin()
                + 18.0 * ((s + fy) * 0.11).cos();
            p.set(x, y, v.clamp(0.0, 255.0) as u8);
        }
    }
    p
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .unwrap_or_else(|| "unknown".to_owned())
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_0003.json".to_owned());
    let target_ms: u64 = if quick { 40 } else { 250 };

    eprintln!("vstress-bench: mode = {}", if quick { "quick" } else { "full" });

    let cur = textured(64, 64, 4);
    let refp = textured(64, 64, 0);
    let rect32 = BlockRect::new(16, 16, 32, 32);
    let rect16 = BlockRect::new(16, 16, 16, 16);
    let pred16: Vec<u8> = (0..256).map(|i| (i * 7 % 251) as u8).collect();
    let mut res16 = vec![0i32; 256];
    kernels::residual(&mut NullProbe, &cur, rect16, &pred16, &mut res16);
    let mut out_plane = Plane::new(64, 64, 0).unwrap();
    let mut mc_dst = vec![0u8; 32 * 32];

    let mut samples: Vec<Sample> = Vec::new();

    // Interior SAD/SSE: the displaced block stays fully inside the frame.
    samples.push(time_it("sad_plane_plane_interior", 32 * 32, target_ms, || {
        black_box(kernels::sad_plane_plane(
            &mut NullProbe,
            black_box(&cur),
            rect32,
            black_box(&refp),
            2,
            1,
        ));
    }));
    // Border SAD: the motion vector pushes the reference off-frame.
    samples.push(time_it("sad_plane_plane_border", 32 * 32, target_ms, || {
        black_box(kernels::sad_plane_plane(
            &mut NullProbe,
            black_box(&cur),
            rect32,
            black_box(&refp),
            -40,
            -40,
        ));
    }));
    samples.push(time_it("sad_plane_pred_16x16", 16 * 16, target_ms, || {
        black_box(kernels::sad_plane_pred(
            &mut NullProbe,
            black_box(&cur),
            rect16,
            black_box(&pred16),
        ));
    }));
    samples.push(time_it("sse_plane_pred_16x16", 16 * 16, target_ms, || {
        black_box(kernels::sse_plane_pred(
            &mut NullProbe,
            black_box(&cur),
            rect16,
            black_box(&pred16),
        ));
    }));
    samples.push(time_it("residual_16x16", 16 * 16, target_ms, || {
        kernels::residual(&mut NullProbe, black_box(&cur), rect16, &pred16, &mut res16);
    }));
    samples.push(time_it("reconstruct_16x16", 16 * 16, target_ms, || {
        kernels::reconstruct(&mut NullProbe, &mut out_plane, rect16, &pred16, &res16);
    }));
    samples.push(time_it("write_pred_16x16", 16 * 16, target_ms, || {
        kernels::write_pred(&mut NullProbe, &mut out_plane, rect16, &pred16);
    }));
    samples.push(time_it("mc_fullpel_32x32", 32 * 32, target_ms, || {
        motion_compensate(
            &mut NullProbe,
            black_box(&refp),
            rect32,
            MotionVector::from_fullpel(2, 1),
            &mut mc_dst,
        );
    }));
    samples.push(time_it("mc_halfpel_32x32", 32 * 32, target_ms, || {
        motion_compensate(
            &mut NullProbe,
            black_box(&refp),
            rect32,
            MotionVector { x: 5, y: 3 },
            &mut mc_dst,
        );
    }));

    let me = MeSettings { range: 12, exhaustive_radius: 0, refine_steps: 16, subpel: true };
    let mut scratch = MeScratch::new();
    samples.push(time_it("motion_search_16x16", 0, target_ms, || {
        black_box(motion_search(
            &mut NullProbe,
            black_box(&cur),
            rect16,
            black_box(&refp),
            MotionVector::ZERO,
            &me,
            2,
            &mut scratch,
        ));
    }));

    // Full quick-profile encode: the hot-kernel profile experiment over the
    // quick configuration, exactly what `vstress-repro profile` runs.
    let encode_start = Instant::now();
    let cfg = ExperimentConfig::quick();
    profile::table_hot_kernels(&cfg).expect("quick profile");
    let encode_wall_ms = encode_start.elapsed().as_secs_f64() * 1e3;
    eprintln!("vstress-bench: quick_profile_encode      {encode_wall_ms:>12.1} ms wall");

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": 1,\n");
    json.push_str(&format!("  \"git_rev\": \"{}\",\n", json_escape(&git_rev())));
    json.push_str(&format!("  \"mode\": \"{}\",\n", if quick { "quick" } else { "full" }));
    json.push_str("  \"kernels\": [\n");
    for (i, s) in samples.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"iters\": {}, \"ns_per_op\": {:.2}, \
             \"pixels_per_op\": {}, \"mpixels_per_s\": {:.2}}}{}\n",
            s.name,
            s.iters,
            s.ns_per_op,
            s.pixels_per_op,
            s.mpixels_per_s(),
            if i + 1 == samples.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"encode\": {{\"name\": \"quick_profile\", \"wall_ms\": {encode_wall_ms:.1}}}\n"
    ));
    json.push_str("}\n");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("vstress-bench: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("vstress-bench: wrote {out_path}");
}
