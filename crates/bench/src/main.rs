//! `vstress-bench` — the machine-readable perf-trajectory harness.
//!
//! ```text
//! vstress-bench                        # full run, writes BENCH_0006.json
//! vstress-bench --quick                # CI mode: shorter sampling windows
//! vstress-bench --filter tage          # only metrics whose name matches
//! vstress-bench --list                 # print metric names, no timing runs
//! vstress-bench --out path.json        # write the report elsewhere
//! vstress-bench gate --baseline BENCH_0006.json --quick --filter sad
//!                                      # rerun, fail on >10% regression
//! vstress-bench gate --baseline a.json --fresh b.json
//!                                      # compare two existing reports
//! ```
//!
//! Times the leaf pixel kernels (interior and border paths separately),
//! motion search, the simulation-side hot paths (cache-hierarchy load
//! stream, core-model event drain, stream record/replay, branch
//! predictors, CBP window replay — each next to its pre-optimization
//! reference so the speedup is visible inside one report), and three
//! end-to-end walls: the counting-only quick-profile encode, the
//! capture of the quick characterization's event streams, and the
//! **re-simulation of those captured streams** — the capture-once /
//! simulate-many contract's payoff, reported as the `characterization`
//! section (`quick_profile_resim`; before the capture split this
//! section timed the fused encode+simulate pass as
//! `quick_profile_pipeline`). One JSON report (`ns/op`, `pixels/s`,
//! wall time, git revision, build metadata) lets every PR be compared
//! against the committed trajectory. Human-readable lines go to stderr;
//! the JSON artifact is the contract. `gate` mode turns the comparison
//! into an exit code for CI (see [`vstress_bench::gate`]).

use std::hint::black_box;
use std::time::Instant;
use vstress::bpred::{harness, BranchPredictor, Gshare, ReferenceGshare, ReferenceTage, Tage};
use vstress::cache::config::PrefetchKind;
use vstress::cache::{Hierarchy, HierarchyConfig, ReferenceHierarchy};
use vstress::cli::{self, FlagSpec};
use vstress::codecs::blocks::BlockRect;
use vstress::codecs::kernels;
use vstress::codecs::mc::{motion_compensate, MotionVector};
use vstress::codecs::mesearch::{motion_search, MeScratch, MeSettings};
use vstress::codecs::{CodecId, EncoderParams};
use vstress::experiments::{profile, ExperimentConfig};
use vstress::pipeline::CoreModel;
use vstress::trace::record::BranchRecord;
use vstress::trace::{Kernel, NullProbe, Probe, ProbeEvent, StreamRecorder};
use vstress::video::Plane;
use vstress::workbench;
use vstress_bench::gate;

const FLAGS: &[FlagSpec] = &[
    FlagSpec::switch("--quick", "short sampling windows (CI mode)"),
    FlagSpec::switch("--list", "print available metric names (one per line), no timing"),
    FlagSpec::value("--out", "FILE", "report path (default BENCH_0006.json)"),
    FlagSpec::value("--filter", "SUBSTR", "only run/gate metrics whose name contains SUBSTR"),
    FlagSpec::value(
        "--tile-workers",
        "N",
        "workers for the tile-parallel encode sample (default 4)",
    ),
    FlagSpec::value("--baseline", "FILE", "gate: committed trajectory to compare against"),
    FlagSpec::value("--fresh", "FILE", "gate: compare this report instead of rerunning"),
    FlagSpec::value("--threshold", "FRAC", "gate: allowed slowdown fraction (default 0.10)"),
];

/// Parses the gate threshold: a fraction like `0.10` (10% slowdown) or
/// `1.0` (2x). CI runners with unknown hardware use a loose value; local
/// runs keep the strict default.
fn threshold_frac(raw: &str) -> Result<f64, String> {
    match raw.parse::<f64>() {
        Ok(v) if v.is_finite() && v > 0.0 => Ok(v),
        _ => Err("expected a positive fraction like 0.10".to_owned()),
    }
}

fn usage_error(e: &cli::CliError) -> ! {
    eprintln!("vstress-bench: {e}");
    eprint!("{}", cli::usage("vstress-bench", "[gate] [flags]", FLAGS));
    std::process::exit(cli::USAGE_EXIT.into());
}

/// One timed microbenchmark.
struct Sample {
    name: String,
    iters: u64,
    ns_per_op: f64,
    /// Pixels processed per op (0 when the metric is not pixel-shaped).
    pixels_per_op: u64,
}

impl Sample {
    fn mpixels_per_s(&self) -> f64 {
        if self.pixels_per_op == 0 || self.ns_per_op == 0.0 {
            0.0
        } else {
            self.pixels_per_op as f64 / self.ns_per_op * 1000.0
        }
    }
}

/// Collects samples, honoring the `--filter` substring: setup always
/// runs (it is cheap and shared), timing loops only for matching names.
/// In `--list` mode every matching name is recorded with zeroed
/// measurements and nothing is timed.
struct Suite {
    filter: Option<String>,
    list: bool,
    target_ms: u64,
    samples: Vec<Sample>,
}

impl Suite {
    fn wants(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Runs `f` repeatedly for roughly `target_ms` and records the sample
    /// (skipped entirely when the name fails the filter).
    fn time_it(&mut self, name: &str, pixels_per_op: u64, mut f: impl FnMut()) {
        if !self.wants(name) {
            return;
        }
        if self.list {
            self.samples.push(Sample {
                name: name.to_owned(),
                iters: 0,
                ns_per_op: 0.0,
                pixels_per_op,
            });
            return;
        }
        // Warm up and calibrate the batch size on a short probe run.
        let probe_start = Instant::now();
        let mut probe_iters = 0u64;
        while probe_start.elapsed().as_millis() < 10 || probe_iters < 3 {
            f();
            probe_iters += 1;
        }
        let ns_estimate = (probe_start.elapsed().as_nanos() as f64 / probe_iters as f64).max(1.0);
        let iters = ((self.target_ms as f64 * 1e6) / ns_estimate).ceil().max(1.0) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let ns_per_op = start.elapsed().as_nanos() as f64 / iters as f64;
        let s = Sample { name: name.to_owned(), iters, ns_per_op, pixels_per_op };
        eprintln!(
            "vstress-bench: {:<34} {:>12.1} ns/op {:>10.1} Mpx/s  ({} iters)",
            s.name,
            s.ns_per_op,
            s.mpixels_per_s(),
            s.iters
        );
        self.samples.push(s);
    }
}

/// A deterministic textured plane (same terrain as the mesearch tests).
fn textured(w: usize, h: usize, shift: usize) -> Plane {
    let mut p = Plane::new(w, h, 0).unwrap();
    for y in 0..h {
        for x in 0..w {
            let s = (x + shift) as f64;
            let fy = y as f64;
            let v = 128.0
                + 58.0 * (s * 0.19).sin()
                + 38.0 * (fy * 0.23 + s * 0.07).sin()
                + 18.0 * ((s + fy) * 0.11).cos();
            p.set(x, y, v.clamp(0.0, 255.0) as u8);
        }
    }
    p
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .unwrap_or_else(|| "unknown".to_owned())
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Everything the comparison needs to be apples-to-apples: the
/// trajectory is only meaningful between runs with the same shape.
struct BuildMeta {
    mode: &'static str,
    tile_workers: usize,
    threads: usize,
    profile: &'static str,
}

/// The end-to-end wall clocks, when their sections ran.
#[derive(Default)]
struct Walls {
    /// Counting-only quick-profile encode.
    encode: Option<f64>,
    /// Recording the quick characterization's event streams.
    capture: Option<f64>,
    /// Re-simulating the captured streams (the `characterization`
    /// section of the report).
    resim: Option<f64>,
}

fn render_report(samples: &[Sample], meta: &BuildMeta, walls: &Walls) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": 2,\n");
    json.push_str(&format!("  \"git_rev\": \"{}\",\n", json_escape(&git_rev())));
    json.push_str(&format!("  \"mode\": \"{}\",\n", meta.mode));
    json.push_str(&format!(
        "  \"meta\": {{\"tile_workers\": {}, \"threads\": {}, \"profile\": \"{}\"}},\n",
        meta.tile_workers, meta.threads, meta.profile
    ));
    json.push_str("  \"kernels\": [\n");
    for (i, s) in samples.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"iters\": {}, \"ns_per_op\": {:.2}, \
             \"pixels_per_op\": {}, \"mpixels_per_s\": {:.2}}}{}\n",
            s.name,
            s.iters,
            s.ns_per_op,
            s.pixels_per_op,
            s.mpixels_per_s(),
            if i + 1 == samples.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]");
    if let Some(ms) = walls.encode {
        json.push_str(&format!(
            ",\n  \"encode\": {{\"name\": \"quick_profile\", \"wall_ms\": {ms:.1}}}"
        ));
    }
    if let Some(ms) = walls.capture {
        json.push_str(&format!(
            ",\n  \"capture\": {{\"name\": \"quick_profile_capture\", \"wall_ms\": {ms:.1}}}"
        ));
    }
    if let Some(ms) = walls.resim {
        json.push_str(&format!(
            ",\n  \"characterization\": {{\"name\": \"quick_profile_resim\", \"wall_ms\": {ms:.1}}}"
        ));
    }
    json.push_str("\n}\n");
    json
}

/// Runs the whole microbenchmark suite (filtered), returning the samples
/// plus the wall clocks of the end-to-end phases when they ran.
fn run_suite(suite: &mut Suite, tile_workers: usize) -> Walls {
    let cur = textured(64, 64, 4);
    // The reference plane carries the edge-padded shadow, as the encoder's
    // reconstruction planes do — border SAD and off-frame MC go through
    // the contiguous padded rows instead of per-pixel clamping.
    let mut refp = textured(64, 64, 0);
    refp.pad_borders();
    let rect32 = BlockRect::new(16, 16, 32, 32);
    let rect16 = BlockRect::new(16, 16, 16, 16);
    let pred16: Vec<u8> = (0..256).map(|i| (i * 7 % 251) as u8).collect();
    let mut res16 = vec![0i32; 256];
    kernels::residual(&mut NullProbe, &cur, rect16, &pred16, &mut res16);
    let mut out_plane = Plane::new(64, 64, 0).unwrap();
    let mut mc_dst = vec![0u8; 32 * 32];

    // Interior SAD/SSE: the displaced block stays fully inside the frame.
    suite.time_it("sad_plane_plane_interior", 32 * 32, || {
        black_box(kernels::sad_plane_plane(
            &mut NullProbe,
            black_box(&cur),
            rect32,
            black_box(&refp),
            2,
            1,
        ));
    });
    // Border SAD: the motion vector pushes the reference off-frame.
    suite.time_it("sad_plane_plane_border", 32 * 32, || {
        black_box(kernels::sad_plane_plane(
            &mut NullProbe,
            black_box(&cur),
            rect32,
            black_box(&refp),
            -40,
            -40,
        ));
    });
    suite.time_it("sad_plane_pred_16x16", 16 * 16, || {
        black_box(kernels::sad_plane_pred(
            &mut NullProbe,
            black_box(&cur),
            rect16,
            black_box(&pred16),
        ));
    });
    suite.time_it("sse_plane_pred_16x16", 16 * 16, || {
        black_box(kernels::sse_plane_pred(
            &mut NullProbe,
            black_box(&cur),
            rect16,
            black_box(&pred16),
        ));
    });
    suite.time_it("residual_16x16", 16 * 16, || {
        kernels::residual(&mut NullProbe, black_box(&cur), rect16, &pred16, &mut res16);
    });
    suite.time_it("reconstruct_16x16", 16 * 16, || {
        kernels::reconstruct(&mut NullProbe, &mut out_plane, rect16, &pred16, &res16);
    });
    suite.time_it("write_pred_16x16", 16 * 16, || {
        kernels::write_pred(&mut NullProbe, &mut out_plane, rect16, &pred16);
    });
    suite.time_it("mc_fullpel_32x32", 32 * 32, || {
        motion_compensate(
            &mut NullProbe,
            black_box(&refp),
            rect32,
            MotionVector::from_fullpel(2, 1),
            &mut mc_dst,
        );
    });
    suite.time_it("mc_halfpel_32x32", 32 * 32, || {
        motion_compensate(
            &mut NullProbe,
            black_box(&refp),
            rect32,
            MotionVector { x: 5, y: 3 },
            &mut mc_dst,
        );
    });

    let me = MeSettings { range: 12, exhaustive_radius: 0, refine_steps: 16, subpel: true };
    let mut scratch = MeScratch::new();
    suite.time_it("motion_search_16x16", 0, || {
        black_box(motion_search(
            &mut NullProbe,
            black_box(&cur),
            rect16,
            black_box(&refp),
            MotionVector::ZERO,
            &me,
            2,
            &mut scratch,
        ));
    });

    // ---- Simulation-side microbenchmarks. Each optimized path is timed
    // next to the kept pre-optimization reference (`*_ref` /
    // `*_per_event` / `*_per_record` names), so the speedup of the
    // rewrites stays visible inside a single report.

    // Cache hierarchy, streaming load/store sweep: sequential 8-byte
    // accesses (eight per 64 B line, so the L1D MRU fast path carries
    // seven of eight) over a region larger than L2, with the stride
    // prefetcher on — the exact shape that made the old prefetch path
    // allocate per demand miss.
    let mut hier_cfg = HierarchyConfig::broadwell();
    hier_cfg.l2_prefetch = PrefetchKind::Stride;
    let addrs: Vec<u64> = (0..4096u64).map(|i| (i * 8) % (512 << 10)).collect();
    let mut live_hier = Hierarchy::new(hier_cfg);
    suite.time_it("sim_hier_load_stream_4k", 0, || {
        for &a in &addrs {
            black_box(live_hier.load(black_box(a), 8));
        }
    });
    let mut ref_hier = ReferenceHierarchy::new(hier_cfg);
    suite.time_it("sim_hier_load_stream_4k_ref", 0, || {
        for &a in &addrs {
            black_box(ref_hier.load(black_box(a), 8));
        }
    });

    // Core-model event drain: one batched `drain_batch` call versus the
    // old per-event dispatch loop, over an encoder-shaped event mix.
    let mut x = 0x2545_f491_4f6c_dd1du64;
    let events: Vec<ProbeEvent> = (0..16_384u64)
        .map(|i| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            match i % 8 {
                0 => ProbeEvent::SetKernel(Kernel::ALL[(x % Kernel::ALL.len() as u64) as usize]),
                1 => ProbeEvent::Alu(1 + x % 8),
                2 => ProbeEvent::Avx(1 + x % 4),
                3 => ProbeEvent::Load { addr: 0x10_0000 + (i * 192) % (2 << 20), bytes: 32 },
                4 => ProbeEvent::Store { addr: 0x40_0000 + x % (1 << 20), bytes: 16 },
                5 => ProbeEvent::Sse(1 + x % 4),
                6 => ProbeEvent::Branch { pc: 0x1000 + (x % 32) * 8, taken: x & 1 == 0 },
                _ => ProbeEvent::Load { addr: x % (4 << 20), bytes: 8 },
            }
        })
        .collect();
    let mut batched_model = CoreModel::broadwell();
    suite.time_it("sim_core_drain_16k", 0, || {
        batched_model.drain_batch(black_box(&events));
    });
    let mut per_event_model = CoreModel::broadwell();
    suite.time_it("sim_core_drain_16k_per_event", 0, || {
        // The pre-batching interface: every event crosses the probe
        // boundary as its own method call.
        for &e in black_box(&events) {
            match e {
                ProbeEvent::SetKernel(k) => per_event_model.set_kernel(k),
                ProbeEvent::Alu(n) => per_event_model.alu(n),
                ProbeEvent::Avx(n) => per_event_model.avx(n),
                ProbeEvent::Sse(n) => per_event_model.sse(n),
                ProbeEvent::Load { addr, bytes } => per_event_model.load(addr, bytes),
                ProbeEvent::Store { addr, bytes } => per_event_model.store(addr, bytes),
                ProbeEvent::Branch { pc, taken } => per_event_model.branch(pc, taken),
            }
        }
    });

    // Probe event stream: packing the same 16k-event mix into canonical
    // chunks (what a recording encode adds over a counting one), and
    // draining a packed stream back into the core model (what a
    // warm-capture re-simulation costs versus `sim_core_drain_16k`'s
    // raw in-memory batch).
    suite.time_it("sim_stream_record_16k", 0, || {
        let mut rec = StreamRecorder::new();
        rec.drain_batch(black_box(&events));
        black_box(rec.finish().0.packed_bytes());
    });
    let stream16k = {
        let mut rec = StreamRecorder::new();
        rec.drain_batch(&events);
        rec.finish().0
    };
    let mut stream_model = CoreModel::broadwell();
    suite.time_it("sim_stream_replay_16k", 0, || {
        stream_model.consume_stream(black_box(&stream16k));
    });

    // Branch predictors: single predict+update round-trips, the live
    // rewrites next to their kept references.
    let mut g32 = Gshare::with_budget_bytes(32 << 10);
    let mut bi = 0u64;
    suite.time_it("sim_gshare32_predict_update", 0, || {
        bi = bi.wrapping_add(0x9e37_79b9);
        let pc = 0x1000 + (bi % 64) * 8;
        let taken = bi & 3 != 0;
        let guess = g32.predict(pc);
        g32.update(pc, taken, guess);
        black_box(guess);
    });
    let mut t8 = Tage::seznec_8kb();
    suite.time_it("sim_tage8_predict_update", 0, || {
        bi = bi.wrapping_add(0x9e37_79b9);
        let pc = 0x1000 + (bi % 64) * 8;
        let taken = bi & 3 != 0;
        let guess = t8.predict(pc);
        t8.update(pc, taken, guess);
        black_box(guess);
    });
    let mut rt8 = ReferenceTage::seznec_8kb();
    suite.time_it("sim_tage8_predict_update_ref", 0, || {
        bi = bi.wrapping_add(0x9e37_79b9);
        let pc = 0x1000 + (bi % 64) * 8;
        let taken = bi & 3 != 0;
        let guess = rt8.predict(pc);
        rt8.update(pc, taken, guess);
        black_box(guess);
    });

    // CBP window replay, through type erasure as the study runs it: the
    // whole-trace `replay` entry point (one virtual call per trace, with
    // predict/update statically dispatched inside) versus the pre-rewrite
    // path — the kept reference implementations driven by the old
    // per-record loop (two virtual calls per branch). Fresh predictor per
    // iteration so both sides always replay from untrained tables.
    let trace: Vec<BranchRecord> = (0..100_000u64)
        .map(|i| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            match i % 3 {
                0 => BranchRecord { pc: 0x100, taken: i % 24 != 23 },
                1 => BranchRecord { pc: 0x200, taken: x & 3 == 0 },
                _ => BranchRecord { pc: 0x300 + (x % 8) * 16, taken: x & 1 == 0 },
            }
        })
        .collect();
    suite.time_it("sim_cbp_replay_gshare2_100k", 0, || {
        let mut p: Box<dyn BranchPredictor> = Box::new(Gshare::with_budget_bytes(2 << 10));
        black_box(harness::run_with_window(&mut p, black_box(&trace), 1_000_000));
    });
    suite.time_it("sim_cbp_replay_gshare2_100k_ref", 0, || {
        let mut p: Box<dyn BranchPredictor> = Box::new(ReferenceGshare::with_budget_bytes(2 << 10));
        black_box(harness::run_per_record(p.as_mut(), black_box(&trace), 1_000_000));
    });
    suite.time_it("sim_cbp_replay_tage8_100k", 0, || {
        let mut p: Box<dyn BranchPredictor> = Box::new(Tage::seznec_8kb());
        black_box(harness::run_with_window(&mut p, black_box(&trace), 1_000_000));
    });
    suite.time_it("sim_cbp_replay_tage8_100k_per_record", 0, || {
        let mut p: Box<dyn BranchPredictor> = Box::new(Tage::seznec_8kb());
        black_box(harness::run_per_record(p.as_mut(), black_box(&trace), 1_000_000));
    });
    suite.time_it("sim_cbp_replay_tage8_100k_ref", 0, || {
        let mut p: Box<dyn BranchPredictor> = Box::new(ReferenceTage::seznec_8kb());
        black_box(harness::run_per_record(p.as_mut(), black_box(&trace), 1_000_000));
    });

    // Intra-encode tile parallelism: one dead-probe SVT-AV1 encode at 1
    // vs N tile workers. The artifacts are identical by the probe-merge
    // contract; only the partition-planning wall clock may differ, and
    // this pair makes the phase-A speedup (or single-core overhead)
    // visible in the trajectory.
    let tile_clip = vstress::video::synth::SynthParams {
        width: 160,
        height: 96,
        frame_count: 2,
        fps: 30.0,
        entropy: 4.5,
        class: vstress::video::synth::SceneClass::Game,
        seed: 9,
    }
    .synthesize("bench-tiles")
    .expect("even dimensions synthesize");
    let tile_encoder = vstress::codecs::Encoder::new(CodecId::SvtAv1, EncoderParams::new(35, 6))
        .expect("valid params");
    suite.time_it("encode_tile_workers_1", 0, || {
        let mut probe = NullProbe;
        black_box(tile_encoder.encode_with(&tile_clip, &mut probe, 1).expect("encode"));
    });
    suite.time_it(&format!("encode_tile_workers_{tile_workers}"), 0, || {
        let mut probe = NullProbe;
        black_box(tile_encoder.encode_with(&tile_clip, &mut probe, tile_workers).expect("encode"));
    });

    // Full quick-profile encode: the hot-kernel profile experiment over the
    // quick configuration, exactly what `vstress-repro profile` runs. This
    // is a counting-only pass (no simulators attached), so it tracks the
    // encoder kernels, not the simulation path.
    let encode_wall_ms = wall(suite, "quick_profile_encode", || {
        let cfg = ExperimentConfig::quick();
        profile::table_hot_kernels(&cfg).expect("quick profile");
    });

    // The quick characterization's clips and encoder parameters — the
    // configuration every figure experiment actually runs — split into
    // the capture-once / simulate-many phases.
    let char_cfg = ExperimentConfig::quick();
    let char_specs: Vec<_> = char_cfg
        .clips
        .iter()
        .map(|&clip| char_cfg.spec(clip, CodecId::SvtAv1, EncoderParams::new(35, 4)))
        .collect();

    // Capture: record every spec's canonical event stream (clip
    // synthesis + recording encode, no simulation).
    let mut caps: Vec<workbench::CapturedEncode> = Vec::new();
    let capture_wall_ms = wall(suite, "quick_profile_capture", || {
        caps = char_specs
            .iter()
            .map(|s| workbench::capture_encode(s).expect("quick capture"))
            .collect();
    });

    // Re-simulation from the warm captures: the pipeline model (cache
    // hierarchy, top-down slots, fetch stream) consuming the recorded
    // streams — the wall clock the simulation-path optimizations are
    // accountable to, and what a warm-store characterization re-run
    // costs. When the capture phase was filtered out, capturing runs
    // here untimed as setup.
    if suite.wants("quick_profile_resim") && !suite.list && caps.is_empty() {
        caps = char_specs
            .iter()
            .map(|s| workbench::capture_encode(s).expect("quick capture"))
            .collect();
    }
    let resim_wall_ms = wall(suite, "quick_profile_resim", || {
        for (spec, cap) in char_specs.iter().zip(&caps) {
            black_box(workbench::characterize_from_capture(spec, cap));
        }
    });

    Walls { encode: encode_wall_ms, capture: capture_wall_ms, resim: resim_wall_ms }
}

/// Times one end-to-end wall-clock section, honoring filter and list
/// mode like [`Suite::time_it`] (listed names carry zeroed samples).
fn wall(suite: &mut Suite, name: &str, body: impl FnOnce()) -> Option<f64> {
    if !suite.wants(name) {
        return None;
    }
    if suite.list {
        suite.samples.push(Sample {
            name: name.to_owned(),
            iters: 0,
            ns_per_op: 0.0,
            pixels_per_op: 0,
        });
        return None;
    }
    let t0 = Instant::now();
    body();
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    eprintln!("vstress-bench: {name:<34} {ms:>12.1} ms wall");
    Some(ms)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match cli::parse(&args, FLAGS) {
        Ok(p) => p,
        Err(e) => usage_error(&e),
    };
    for p in &parsed.positionals {
        if p != "gate" {
            usage_error(&cli::CliError::Unknown { flag: p.clone(), valid: "gate".to_owned() });
        }
    }
    let gate_mode = parsed.positionals.iter().any(|p| p == "gate");
    let quick = parsed.switch("--quick");
    let filter = parsed.value("--filter").map(str::to_owned);
    let tile_workers = match parsed.parsed("--tile-workers", cli::positive_usize) {
        Ok(v) => v.unwrap_or(4),
        Err(e) => usage_error(&e),
    };
    let out_path = parsed.value("--out").unwrap_or("BENCH_0006.json").to_owned();

    // `--list`: walk the suite without timing anything and print every
    // (filter-matching) metric name to stdout, one per line.
    if parsed.switch("--list") {
        if gate_mode {
            eprintln!("vstress-bench: --list cannot be combined with gate");
            std::process::exit(cli::USAGE_EXIT.into());
        }
        let mut suite = Suite { filter, list: true, target_ms: 0, samples: Vec::new() };
        run_suite(&mut suite, tile_workers);
        for s in &suite.samples {
            println!("{}", s.name);
        }
        return;
    }

    let meta = BuildMeta {
        mode: if quick { "quick" } else { "full" },
        tile_workers,
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        profile: if cfg!(debug_assertions) { "debug" } else { "release" },
    };

    if gate_mode {
        let threshold = match parsed.parsed("--threshold", threshold_frac) {
            Ok(v) => v.unwrap_or(gate::DEFAULT_THRESHOLD),
            Err(e) => usage_error(&e),
        };
        let Some(baseline_path) = parsed.value("--baseline") else {
            eprintln!("vstress-bench: gate needs --baseline FILE (the committed trajectory)");
            std::process::exit(cli::USAGE_EXIT.into());
        };
        let baseline_json = match std::fs::read_to_string(baseline_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("vstress-bench: cannot read baseline {baseline_path}: {e}");
                std::process::exit(1);
            }
        };
        let base = gate::parse_metrics(&baseline_json);
        if base.is_empty() {
            eprintln!("vstress-bench: no metrics in baseline {baseline_path}");
            std::process::exit(1);
        }
        let fresh = match parsed.value("--fresh") {
            Some(fresh_path) => {
                let json = match std::fs::read_to_string(fresh_path) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("vstress-bench: cannot read fresh report {fresh_path}: {e}");
                        std::process::exit(1);
                    }
                };
                gate::parse_metrics(&json)
            }
            None => {
                eprintln!("vstress-bench: gate mode = {} (baseline {baseline_path})", meta.mode);
                let mut suite = Suite {
                    filter: filter.clone(),
                    list: false,
                    target_ms: if quick { 40 } else { 250 },
                    samples: Vec::new(),
                };
                let walls = run_suite(&mut suite, tile_workers);
                let json = render_report(&suite.samples, &meta, &walls);
                // Persist the fresh report only when asked: CI uploads it
                // as the run artifact.
                if parsed.value("--out").is_some() {
                    if let Err(e) = std::fs::write(&out_path, &json) {
                        eprintln!("vstress-bench: cannot write {out_path}: {e}");
                        std::process::exit(1);
                    }
                    eprintln!("vstress-bench: wrote {out_path}");
                }
                suite
                    .samples
                    .iter()
                    .map(|s| gate::Metric { name: s.name.clone(), ns_per_op: s.ns_per_op })
                    .collect()
            }
        };
        let report = gate::compare(&base, &fresh, threshold, filter.as_deref());
        // A gate that compared nothing is a configuration error, not a
        // pass: a typoed `--filter` must not green-light a regression.
        if report.compared() == 0 {
            match &filter {
                Some(f) => eprintln!(
                    "vstress-bench: gate: error — no shared metrics match --filter {f:?}; \
                     nothing was gated"
                ),
                None => eprintln!(
                    "vstress-bench: gate: error — no shared metrics between baseline and \
                     fresh report; nothing was gated"
                ),
            }
            std::process::exit(1);
        }
        for line in &report.lines {
            eprintln!("vstress-bench: gate: {line}");
        }
        if !report.missing.is_empty() {
            eprintln!(
                "vstress-bench: gate: {} baseline metric(s) missing from fresh report",
                report.missing.len()
            );
        }
        if report.passed() {
            eprintln!("vstress-bench: gate: PASS ({} metrics compared)", report.lines.len());
        } else {
            eprintln!(
                "vstress-bench: gate: FAIL — {} metric(s) regressed more than {:.0}%",
                report.regressions.len(),
                threshold * 100.0
            );
            std::process::exit(1);
        }
        return;
    }

    eprintln!("vstress-bench: mode = {}", meta.mode);
    let mut suite =
        Suite { filter, list: false, target_ms: if quick { 40 } else { 250 }, samples: Vec::new() };
    let walls = run_suite(&mut suite, tile_workers);
    let json = render_report(&suite.samples, &meta, &walls);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("vstress-bench: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("vstress-bench: wrote {out_path}");
}
