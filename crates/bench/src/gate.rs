//! The bench regression gate: compare a fresh `vstress-bench` JSON
//! report against a committed `BENCH_*.json` trajectory file and fail
//! on any metric that got more than [`DEFAULT_THRESHOLD`] slower.
//!
//! The comparison logic lives here (not in `main.rs`) so the negative
//! test — inject a 20% regression, assert the gate trips — runs as an
//! ordinary unit test instead of a subprocess round-trip. The JSON
//! "parser" is a deliberate non-parser: `vstress-bench` emits one
//! metric object per line with a fixed key order, and the gate only
//! needs `(name, ns_per_op)` pairs, so a line scan is exact for the
//! reports we write and degrades to "metric missing" (a warning, not a
//! false pass) for anything else.

/// Relative slowdown at which the gate fails: fresh > base × 1.10.
pub const DEFAULT_THRESHOLD: f64 = 0.10;

/// One named metric extracted from a bench report.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// The sample name (e.g. `sad_plane_plane_interior`).
    pub name: String,
    /// Nanoseconds per operation — the gated quantity.
    pub ns_per_op: f64,
}

/// One metric that regressed past the threshold.
#[derive(Debug, Clone)]
pub struct Regression {
    /// The metric name.
    pub name: String,
    /// Baseline ns/op.
    pub base: f64,
    /// Fresh ns/op.
    pub fresh: f64,
}

impl Regression {
    /// Relative slowdown, e.g. `0.25` for 25% slower.
    pub fn slowdown(&self) -> f64 {
        self.fresh / self.base - 1.0
    }
}

/// The outcome of one gate comparison.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Human-readable one-per-metric comparison lines.
    pub lines: Vec<String>,
    /// Metrics past the threshold (empty means the gate passes).
    pub regressions: Vec<Regression>,
    /// Baseline metrics with no fresh counterpart (skipped, warned).
    pub missing: Vec<String>,
}

impl GateReport {
    /// Whether the gate passes (no regressions).
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Number of metrics actually compared — present in both reports
    /// and matching the filter. A report with `compared() == 0`
    /// trivially "passes", so callers must treat it as a configuration
    /// error (a typoed `--filter` must not green-light a regression).
    pub fn compared(&self) -> usize {
        self.lines.len() - self.missing.len()
    }
}

/// Extracts `(name, ns_per_op)` pairs from a `vstress-bench` JSON
/// report. Tolerates (ignores) lines that don't carry both keys.
pub fn parse_metrics(json: &str) -> Vec<Metric> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(name) = scan_str(line, "\"name\": \"") else { continue };
        let Some(ns) = scan_f64(line, "\"ns_per_op\": ") else { continue };
        out.push(Metric { name: name.to_owned(), ns_per_op: ns });
    }
    out
}

fn scan_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = &line[line.find(key)? + key.len()..];
    Some(&rest[..rest.find('"')?])
}

fn scan_f64(line: &str, key: &str) -> Option<f64> {
    let rest = &line[line.find(key)? + key.len()..];
    let end =
        rest.find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Compares `fresh` against `base`, gating every baseline metric whose
/// name contains `filter` (all of them when `filter` is `None`).
///
/// Improvements and regressions inside the threshold both pass; a
/// baseline metric absent from the fresh report is recorded in
/// `missing` but does not fail the gate (the trajectory may gain
/// metrics the previous baseline lacks — the *fresh* report having
/// extras is likewise fine).
pub fn compare(
    base: &[Metric],
    fresh: &[Metric],
    threshold: f64,
    filter: Option<&str>,
) -> GateReport {
    let mut report = GateReport { lines: Vec::new(), regressions: Vec::new(), missing: Vec::new() };
    for b in base {
        if let Some(f) = filter {
            if !b.name.contains(f) {
                continue;
            }
        }
        let Some(fr) = fresh.iter().find(|m| m.name == b.name) else {
            report.missing.push(b.name.clone());
            report
                .lines
                .push(format!("{:<34} {:>10.1} ns/op -> (missing)  SKIP", b.name, b.ns_per_op));
            continue;
        };
        let delta = fr.ns_per_op / b.ns_per_op - 1.0;
        let verdict = if delta > threshold { "FAIL" } else { "ok" };
        report.lines.push(format!(
            "{:<34} {:>10.1} -> {:>10.1} ns/op  {:>+7.1}%  {}",
            b.name,
            b.ns_per_op,
            fr.ns_per_op,
            delta * 100.0,
            verdict
        ));
        if delta > threshold {
            report.regressions.push(Regression {
                name: b.name.clone(),
                base: b.ns_per_op,
                fresh: fr.ns_per_op,
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(name: &str, ns: f64) -> Metric {
        Metric { name: name.to_owned(), ns_per_op: ns }
    }

    #[test]
    fn parses_bench_report_lines() {
        let json = r#"{
  "schema": 2,
  "kernels": [
    {"name": "sad_plane_plane_interior", "iters": 10, "ns_per_op": 176.85, "pixels_per_op": 1024, "mpixels_per_s": 5790.0},
    {"name": "sim_tage8_predict_update", "iters": 20, "ns_per_op": 79.90, "pixels_per_op": 0, "mpixels_per_s": 0.0}
  ]
}"#;
        let metrics = parse_metrics(json);
        assert_eq!(
            metrics,
            vec![m("sad_plane_plane_interior", 176.85), m("sim_tage8_predict_update", 79.90)]
        );
    }

    #[test]
    fn identical_reports_pass() {
        let base = vec![m("a", 100.0), m("b", 50.0)];
        let report = compare(&base, &base, DEFAULT_THRESHOLD, None);
        assert!(report.passed(), "{:?}", report.regressions);
        assert_eq!(report.lines.len(), 2);
    }

    #[test]
    fn injected_20_percent_regression_fails() {
        let base = vec![m("sad_plane_plane_interior", 100.0), m("mc_halfpel_32x32", 200.0)];
        let fresh = vec![m("sad_plane_plane_interior", 120.0), m("mc_halfpel_32x32", 200.0)];
        let report = compare(&base, &fresh, DEFAULT_THRESHOLD, None);
        assert!(!report.passed());
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].name, "sad_plane_plane_interior");
        assert!((report.regressions[0].slowdown() - 0.20).abs() < 1e-9);
    }

    #[test]
    fn regression_inside_threshold_passes() {
        let base = vec![m("a", 100.0)];
        let fresh = vec![m("a", 109.0)];
        assert!(compare(&base, &fresh, DEFAULT_THRESHOLD, None).passed());
    }

    #[test]
    fn improvement_passes() {
        let base = vec![m("a", 100.0)];
        let fresh = vec![m("a", 40.0)];
        assert!(compare(&base, &fresh, DEFAULT_THRESHOLD, None).passed());
    }

    #[test]
    fn filter_restricts_gated_metrics() {
        let base = vec![m("sad_interior", 100.0), m("encode_tiles", 100.0)];
        let fresh = vec![m("sad_interior", 100.0), m("encode_tiles", 500.0)];
        // The encode metric regressed 5x, but the filter excludes it.
        assert!(compare(&base, &fresh, DEFAULT_THRESHOLD, Some("sad")).passed());
        assert!(!compare(&base, &fresh, DEFAULT_THRESHOLD, None).passed());
    }

    #[test]
    fn filter_matching_nothing_compares_nothing() {
        let base = vec![m("sad_interior", 100.0), m("encode_tiles", 100.0)];
        let fresh = vec![m("sad_interior", 500.0)];
        // No baseline name contains "tage": the report trivially passes
        // but compares zero metrics — main() turns that into exit 1.
        let report = compare(&base, &fresh, DEFAULT_THRESHOLD, Some("tage"));
        assert!(report.passed(), "an empty comparison has no regressions to fail on");
        assert_eq!(report.compared(), 0, "nothing matched, nothing compared");
        // A filter matching only a baseline metric the fresh report
        // lacks is the same trap: one SKIP line, zero comparisons.
        let only_missing = compare(&base, &[m("other", 1.0)], DEFAULT_THRESHOLD, Some("sad"));
        assert!(only_missing.passed());
        assert_eq!(only_missing.compared(), 0);
        assert_eq!(only_missing.missing, vec!["sad_interior".to_owned()]);
        // And a matching filter reports what it compared.
        let ok = compare(&base, &fresh, DEFAULT_THRESHOLD, Some("sad"));
        assert_eq!(ok.compared(), 1);
        assert!(!ok.passed(), "the 5x regression is visible once compared");
    }

    #[test]
    fn missing_metric_skips_with_warning() {
        let base = vec![m("gone", 100.0), m("kept", 100.0)];
        let fresh = vec![m("kept", 100.0)];
        let report = compare(&base, &fresh, DEFAULT_THRESHOLD, None);
        assert!(report.passed());
        assert_eq!(report.missing, vec!["gone".to_owned()]);
    }

    // The committed trajectory must gate cleanly against itself — this
    // is the "passes on the committed trajectory" acceptance check, run
    // against the real artifact in the repo root.
    #[test]
    fn committed_trajectory_passes_against_itself() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_0006.json");
        let json = std::fs::read_to_string(path).expect("BENCH_0006.json committed at repo root");
        let metrics = parse_metrics(&json);
        assert!(metrics.len() >= 15, "expected a full report, got {}", metrics.len());
        let report = compare(&metrics, &metrics, DEFAULT_THRESHOLD, None);
        assert!(report.passed());
        assert!(report.missing.is_empty());
    }

    // And a synthetic 20% slowdown of every metric in the committed
    // trajectory must trip the gate — the injected-regression negative
    // test against the real baseline.
    #[test]
    fn committed_trajectory_fails_on_injected_regression() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_0006.json");
        let json = std::fs::read_to_string(path).expect("BENCH_0006.json committed at repo root");
        let base = parse_metrics(&json);
        let fresh: Vec<Metric> = base.iter().map(|b| m(&b.name, b.ns_per_op * 1.20)).collect();
        let report = compare(&base, &fresh, DEFAULT_THRESHOLD, None);
        assert!(!report.passed());
        assert_eq!(report.regressions.len(), base.len());
    }
}
