//! Shared configuration for the `vstress` benchmark suite.
//!
//! The actual benchmarks live in `benches/`:
//!
//! * `figures` — one Criterion benchmark per paper table/figure,
//!   exercising the exact experiment runner that regenerates it (at a
//!   micro profile so a full `cargo bench` stays tractable);
//! * `kernels` — microbenchmarks of the hot substrate kernels (DCT, SATD,
//!   range coder, predictors, cache);
//! * `ablations` — the design-choice sweeps listed in DESIGN.md §6
//!   (predictor families at equal budget, TAGE geometry, replacement
//!   policies, prefetch, MLP modelling).
//!
//! [`gate`] holds the `vstress-bench gate` comparison logic — the
//! perf-trajectory regression gate run by CI against the committed
//! `BENCH_*.json` baselines.

pub mod gate;

use vstress::experiments::ExperimentConfig;

/// A micro experiment profile: one tiny clip, two CRF points — small
/// enough that Criterion can sample each figure runner repeatedly.
pub fn micro_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick();
    cfg.clips = vec!["cat"];
    cfg.headline_clip = "cat";
    cfg.crf_points = vec![20, 55];
    cfg.preset_points = vec![2, 8];
    cfg.cbp_window = 150_000;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_config_is_tiny() {
        let c = micro_config();
        assert_eq!(c.clips.len(), 1);
        assert!(c.crf_points.len() <= 2);
    }
}
