//! One Criterion benchmark per paper table/figure: each bench runs the
//! experiment runner that regenerates the artifact (micro profile).
//!
//! `cargo bench -p vstress-bench --bench figures` prints timing for every
//! runner; the tables themselves come from `vstress-repro`.

use criterion::{criterion_group, criterion_main, Criterion};
use vstress::experiments::{
    catalogue, cbp, crf_sweep, mix, preset_sweep, runtime_quality, threads,
};
use vstress_bench::micro_config;

fn bench_tables(c: &mut Criterion) {
    let cfg = micro_config();
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.bench_function("table1_vbench", |b| b.iter(catalogue::table1_vbench));
    g.bench_function("table2_instruction_mix", |b| {
        b.iter(|| mix::table2_instruction_mix(&cfg).unwrap())
    });
    g.finish();
}

fn bench_runtime_figures(c: &mut Criterion) {
    let cfg = micro_config();
    let mut g = c.benchmark_group("runtime_quality");
    g.sample_size(10);
    g.bench_function("fig01_runtime_vs_crf", |b| {
        b.iter(|| runtime_quality::fig01_runtime_vs_crf(&cfg).unwrap())
    });
    g.bench_function("fig02b_psnr_vs_time", |b| {
        b.iter(|| runtime_quality::fig02b_psnr_vs_time(&cfg).unwrap())
    });
    g.finish();
}

fn bench_sweep_figures(c: &mut Criterion) {
    let cfg = micro_config();
    let mut g = c.benchmark_group("crf_sweep");
    g.sample_size(10);
    g.bench_function("fig04_07_sweep", |b| {
        b.iter(|| {
            let pts = crf_sweep::crf_sweep(&cfg).unwrap();
            (
                crf_sweep::fig04_crf_sweep(&pts),
                crf_sweep::fig05_topdown(&pts),
                crf_sweep::fig06_microarch(&pts),
                crf_sweep::fig07_missrate(&pts),
            )
        })
    });
    g.bench_function("fig03_opmix", |b| b.iter(|| mix::fig03_opmix_sweep(&cfg).unwrap()));
    g.finish();
}

fn bench_cbp_figures(c: &mut Criterion) {
    let cfg = micro_config();
    let mut g = c.benchmark_group("cbp");
    g.sample_size(10);
    g.bench_function("fig08_cbp_p8_crf63", |b| b.iter(|| cbp::fig08_cbp(&cfg).unwrap()));
    g.bench_function("fig09_cbp_p4_crf10", |b| b.iter(|| cbp::fig09_cbp(&cfg).unwrap()));
    g.bench_function("fig10_cbp_p4_crf60", |b| b.iter(|| cbp::fig10_cbp(&cfg).unwrap()));
    g.finish();
}

fn bench_preset_and_threads(c: &mut Criterion) {
    let cfg = micro_config();
    let mut g = c.benchmark_group("preset_threads");
    g.sample_size(10);
    g.bench_function("fig11_preset_sweep", |b| {
        b.iter(|| {
            let pts = preset_sweep::preset_sweep(&cfg).unwrap();
            (preset_sweep::fig11ab_runtime_quality(&pts), preset_sweep::fig11cde_microarch(&pts))
        })
    });
    g.bench_function("fig12_15_thread_scaling", |b| {
        b.iter(|| threads::fig12_15_thread_scaling(&cfg).unwrap())
    });
    g.bench_function("fig16_topdown_threads", |b| {
        b.iter(|| threads::fig16_topdown_threads(&cfg).unwrap())
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_tables,
    bench_runtime_figures,
    bench_sweep_figures,
    bench_cbp_figures,
    bench_preset_and_threads
);
criterion_main!(figures);
