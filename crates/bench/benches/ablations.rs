//! Ablation benches for the design choices DESIGN.md §6 calls out.
//!
//! Each group runs a family of configurations on the *same* workload and
//! prints the quality metric alongside Criterion's timing, so one
//! `cargo bench --bench ablations` answers both "what does the knob cost"
//! and "what does the knob buy".

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::OnceLock;
use vstress::bpred::{
    harness, Bimodal, BranchPredictor, Gshare, Perceptron, Tage, TageConfig, TageWithLoop,
    Tournament, TwoLevelLocal,
};
use vstress::cache::{Hierarchy, HierarchyConfig, ReplacementPolicy};
use vstress::codecs::{CodecId, Encoder, EncoderParams};
use vstress::pipeline::{CoreConfig, CoreModel};
use vstress::trace::record::NullSink;
use vstress::trace::{BranchRecord, MemAccess, SinkProbe};
use vstress::video::vbench::{self, FidelityConfig};

/// A shared branch+memory trace captured once from a real encode.
fn traces() -> &'static (Vec<BranchRecord>, Vec<MemAccess>, u64) {
    static TRACES: OnceLock<(Vec<BranchRecord>, Vec<MemAccess>, u64)> = OnceLock::new();
    TRACES.get_or_init(|| {
        let clip = vbench::clip("game2").unwrap().synthesize(&FidelityConfig::smoke());
        let enc = Encoder::new(CodecId::SvtAv1, EncoderParams::new(45, 6)).unwrap();
        let mut probe = SinkProbe::new(Vec::new(), Vec::new());
        enc.encode(&clip, &mut probe).unwrap();
        let (mix, branches, mems) = probe.into_parts();
        (branches, mems, mix.total())
    })
}

/// Ablation: predictor family at a fixed ~8 KB budget.
/// A factory of boxed predictors, used by the family ablation.
type PredictorFactory = Box<dyn Fn() -> Box<dyn BranchPredictor>>;

fn ablate_predictor_families(c: &mut Criterion) {
    let (branches, _, total) = traces();
    let mut g = c.benchmark_group("ablation_predictor_family_8kb");
    g.sample_size(10);
    let families: Vec<(&str, PredictorFactory)> = vec![
        ("bimodal", Box::new(|| Box::new(Bimodal::with_budget_bytes(8 << 10)))),
        ("local", Box::new(|| Box::new(TwoLevelLocal::new(12, 12)))),
        ("gshare", Box::new(|| Box::new(Gshare::with_budget_bytes(8 << 10)))),
        ("tournament", Box::new(|| Box::new(Tournament::with_budget_bytes(8 << 10)))),
        ("perceptron", Box::new(|| Box::new(Perceptron::with_budget_bytes(8 << 10)))),
        ("tage", Box::new(|| Box::new(Tage::seznec_8kb()))),
        ("tage-l", Box::new(|| Box::new(TageWithLoop::seznec_8kb()))),
    ];
    for (name, make) in &families {
        let stats = harness::run_with_window(&mut make(), branches, *total);
        eprintln!(
            "[ablation] predictor {name:<10} miss {:.3}%  MPKI {:.3}",
            stats.miss_rate() * 100.0,
            stats.mpki()
        );
        g.bench_function(*name, |b| {
            b.iter(|| harness::run_with_window(&mut make(), branches, *total))
        });
    }
    g.finish();
}

/// Ablation: TAGE tagged-table count at fixed total budget.
fn ablate_tage_geometry(c: &mut Criterion) {
    let (branches, _, total) = traces();
    let mut g = c.benchmark_group("ablation_tage_tables");
    g.sample_size(10);
    for tables in [2usize, 4, 6, 10] {
        let cfg = TageConfig {
            num_tables: tables,
            // Keep total storage roughly constant by scaling entries.
            log_entries: match tables {
                2 => 11,
                4 => 10,
                6 => 9,
                _ => 9,
            },
            ..TageConfig::budget_8kb()
        };
        let stats = harness::run_with_window(&mut Tage::new(cfg.clone()), branches, *total);
        eprintln!(
            "[ablation] tage tables={tables:<2} miss {:.3}%  MPKI {:.3}",
            stats.miss_rate() * 100.0,
            stats.mpki()
        );
        g.bench_function(format!("tables_{tables}"), |b| {
            b.iter(|| harness::run_with_window(&mut Tage::new(cfg.clone()), branches, *total))
        });
    }
    g.finish();
}

/// Ablation: cache replacement policy and next-line prefetch.
fn ablate_cache_policies(c: &mut Criterion) {
    let (_, mems, total) = traces();
    let mut g = c.benchmark_group("ablation_cache");
    g.sample_size(10);
    for policy in ReplacementPolicy::ALL {
        let mut cfg = HierarchyConfig::broadwell_scaled(16);
        cfg.l1d.policy = policy;
        cfg.l2.policy = policy;
        let run = |cfg: HierarchyConfig| {
            let mut h = Hierarchy::new(cfg);
            for m in mems {
                if m.is_store {
                    h.store(m.addr, m.bytes);
                } else {
                    h.load(m.addr, m.bytes);
                }
            }
            h.stats()
        };
        let stats = run(cfg);
        eprintln!(
            "[ablation] policy {:<7} L1D MPKI {:.2}  L2 MPKI {:.2}",
            policy.label(),
            stats.l1d.mpki(*total),
            stats.l2.mpki(*total)
        );
        g.bench_function(policy.label(), |b| b.iter(|| run(cfg)));
    }
    for prefetch in [
        vstress::cache::config::PrefetchKind::None,
        vstress::cache::config::PrefetchKind::NextLine,
        vstress::cache::config::PrefetchKind::Stride,
    ] {
        let mut cfg = HierarchyConfig::broadwell_scaled(16);
        cfg.l2_prefetch = prefetch;
        let mut h = Hierarchy::new(cfg);
        for m in mems {
            if m.is_store {
                h.store(m.addr, m.bytes);
            } else {
                h.load(m.addr, m.bytes);
            }
        }
        eprintln!("[ablation] prefetch={prefetch:?}  L2 MPKI {:.3}", h.stats().l2.mpki(*total));
    }
    g.finish();
}

/// Ablation: memory-level-parallelism modelling in the interval core.
fn ablate_mlp_model(c: &mut Criterion) {
    let clip = vbench::clip("cat").unwrap().synthesize(&FidelityConfig::smoke());
    let enc = Encoder::new(CodecId::SvtAv1, EncoderParams::new(45, 6)).unwrap();
    let mut g = c.benchmark_group("ablation_mlp");
    g.sample_size(10);
    for (name, max_mlp) in [("mlp_off", 1u32), ("mlp_4", 4), ("mlp_8", 8)] {
        let run = || {
            let mut cfg = CoreConfig::broadwell();
            cfg.max_mlp = max_mlp;
            let mut model = CoreModel::new(
                cfg,
                HierarchyConfig::broadwell_scaled(16),
                Gshare::with_budget_bytes(32 << 10),
            );
            enc.encode(&clip, &mut model).unwrap();
            model.into_report()
        };
        let report = run();
        eprintln!("[ablation] {name:<8} IPC {:.3}", report.ipc());
        g.bench_function(name, |b| b.iter(run));
    }
    g.finish();
}

/// Ablation: the paper's own "exponential search space" claim — partition
/// grammar size vs instruction count at identical content and quality.
fn ablate_search_space(c: &mut Criterion) {
    let clip = vbench::clip("cat").unwrap().synthesize(&FidelityConfig::smoke());
    let mut g = c.benchmark_group("ablation_search_space");
    g.sample_size(10);
    for (name, codec) in [
        ("av1_10_shapes", CodecId::SvtAv1),
        ("vp9_4_shapes", CodecId::LibvpxVp9),
        ("h26x_quadtree", CodecId::X265),
    ] {
        let params = vstress::workbench::equivalent_params(codec, 30, 2);
        let enc = Encoder::new(codec, params).unwrap();
        let run = || {
            let mut probe = SinkProbe::new(NullSink, NullSink);
            enc.encode(&clip, &mut probe).unwrap();
            probe.mix().total()
        };
        eprintln!("[ablation] {name:<14} instructions {:.3e}", run() as f64);
        g.bench_function(name, |b| b.iter(run));
    }
    g.finish();
}

/// Ablation: RDO early-termination aggressiveness — the paper's
/// "increasing CRF simply decreases the amount of algorithmic work"
/// pruning dial, isolated from CRF.
fn ablate_early_exit(c: &mut Criterion) {
    use vstress::codecs::codecs::ToolSet;
    let clip = vbench::clip("cat").unwrap().synthesize(&FidelityConfig::smoke());
    let params = EncoderParams::new(40, 4);
    let base = ToolSet::resolve(CodecId::SvtAv1, &params).unwrap();
    let mut g = c.benchmark_group("ablation_early_exit");
    g.sample_size(10);
    for scale in [1u64, 4, 16, 64] {
        let mut tools = base.clone();
        tools.early_exit_scale = scale;
        let enc = Encoder::with_tools(tools, params).unwrap();
        let run = || {
            let mut probe = SinkProbe::new(NullSink, NullSink);
            let out = enc.encode(&clip, &mut probe).unwrap();
            (probe.mix().total(), out.mean_psnr())
        };
        let (instrs, psnr) = run();
        eprintln!(
            "[ablation] early_exit_scale={scale:<3} instructions {:.3e}  PSNR {:.2} dB",
            instrs as f64, psnr
        );
        g.bench_function(format!("scale_{scale}"), |b| b.iter(run));
    }
    g.finish();
}

criterion_group!(
    ablations,
    ablate_predictor_families,
    ablate_tage_geometry,
    ablate_cache_policies,
    ablate_mlp_model,
    ablate_search_space,
    ablate_early_exit
);
criterion_main!(ablations);
