//! Microbenchmarks of the hot substrate kernels.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use vstress::bpred::{BranchPredictor, Gshare, Tage};
use vstress::cache::{AccessKind, Cache, CacheConfig, Hierarchy, HierarchyConfig};
use vstress::codecs::blocks::BlockRect;
use vstress::codecs::entropy::{Context, RangeDecoder, RangeEncoder};
use vstress::codecs::kernels::sad_plane_plane;
use vstress::codecs::mc::MotionVector;
use vstress::codecs::mesearch::{motion_search, MeScratch, MeSettings};
use vstress::codecs::transform;
use vstress::trace::NullProbe;
use vstress::video::Plane;

fn bench_transforms(c: &mut Criterion) {
    let mut g = c.benchmark_group("transform");
    for n in [4usize, 8, 16, 32] {
        let src: Vec<i32> = (0..n * n).map(|i| (i as i32 * 37) % 255 - 127).collect();
        let mut dst = vec![0i32; n * n];
        g.throughput(Throughput::Elements((n * n) as u64));
        g.bench_function(format!("fwd_dct_{n}x{n}"), |b| {
            b.iter(|| transform::forward(&mut NullProbe, n, black_box(&src), &mut dst))
        });
        g.bench_function(format!("inv_dct_{n}x{n}"), |b| {
            b.iter(|| transform::inverse(&mut NullProbe, n, black_box(&src), &mut dst))
        });
    }
    let res: Vec<i32> = (0..256).map(|i| (i * 13) % 101 - 50).collect();
    g.bench_function("satd_16x16", |b| {
        b.iter(|| transform::satd(&mut NullProbe, 16, 16, black_box(&res)))
    });
    g.finish();
}

fn bench_entropy(c: &mut Criterion) {
    let mut g = c.benchmark_group("entropy");
    let bins: Vec<bool> = (0..10_000).map(|i| i % 7 < 2).collect();
    g.throughput(Throughput::Elements(bins.len() as u64));
    g.bench_function("encode_10k_bins", |b| {
        b.iter(|| {
            let mut enc = RangeEncoder::new();
            let mut ctx = Context::new(1);
            for &bin in &bins {
                enc.encode(&mut NullProbe, &mut ctx, bin);
            }
            enc.finish()
        })
    });
    let bytes = {
        let mut enc = RangeEncoder::new();
        let mut ctx = Context::new(1);
        for &bin in &bins {
            enc.encode(&mut NullProbe, &mut ctx, bin);
        }
        enc.finish()
    };
    g.bench_function("decode_10k_bins", |b| {
        b.iter(|| {
            let mut dec = RangeDecoder::new(&bytes);
            let mut ctx = Context::new(1);
            let mut acc = 0u32;
            for _ in 0..bins.len() {
                acc += dec.decode(&mut NullProbe, &mut ctx) as u32;
            }
            acc
        })
    });
    g.finish();
}

fn bench_predictors(c: &mut Criterion) {
    let mut g = c.benchmark_group("bpred");
    let trace: Vec<(u64, bool)> =
        (0..50_000u64).map(|i| (0x4000 + (i % 97) * 4, (i * 2654435761) % 5 < 2)).collect();
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("gshare_32kb", |b| {
        b.iter(|| {
            let mut p = Gshare::with_budget_bytes(32 << 10);
            let mut misses = 0u32;
            for &(pc, taken) in &trace {
                let guess = p.predict(pc);
                misses += (guess != taken) as u32;
                p.update(pc, taken, guess);
            }
            misses
        })
    });
    g.bench_function("tage_8kb", |b| {
        b.iter(|| {
            let mut p = Tage::seznec_8kb();
            let mut misses = 0u32;
            for &(pc, taken) in &trace {
                let guess = p.predict(pc);
                misses += (guess != taken) as u32;
                p.update(pc, taken, guess);
            }
            misses
        })
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    let addrs: Vec<u64> = (0..100_000u64).map(|i| (i * 2654435761) % (1 << 22)).collect();
    g.throughput(Throughput::Elements(addrs.len() as u64));
    g.bench_function("single_cache_random", |b| {
        b.iter(|| {
            let mut cache = Cache::new(CacheConfig::lru(32 << 10, 8, 64));
            let mut hits = 0u64;
            for &a in &addrs {
                hits += cache.access_line(a >> 6, AccessKind::Read).hit as u64;
            }
            hits
        })
    });
    g.bench_function("hierarchy_random", |b| {
        b.iter(|| {
            let mut h = Hierarchy::new(HierarchyConfig::broadwell_scaled(16));
            for &a in &addrs {
                h.load(a, 32);
            }
            h.stats().l1d.misses
        })
    });
    g.finish();
}

fn bench_motion_search(c: &mut Criterion) {
    let mut cur = Plane::new(64, 64, 0).unwrap();
    let mut refp = Plane::new(64, 64, 0).unwrap();
    for y in 0..64 {
        for x in 0..64 {
            let v = ((x as f64 * 0.21).sin() * 60.0 + (y as f64 * 0.17).cos() * 50.0 + 128.0) as u8;
            cur.set(x, y, v);
            refp.set(x, y, v.wrapping_add((x % 3) as u8));
        }
    }
    let rect = BlockRect::new(16, 16, 16, 16);
    let settings = MeSettings { range: 12, exhaustive_radius: 0, refine_steps: 16, subpel: true };
    let mut scratch = MeScratch::new();
    c.bench_function("motion_search_16x16", |b| {
        b.iter(|| {
            motion_search(
                &mut NullProbe,
                black_box(&cur),
                rect,
                black_box(&refp),
                MotionVector::ZERO,
                &settings,
                8,
                &mut scratch,
            )
        })
    });
    c.bench_function("sad_16x16", |b| {
        b.iter(|| sad_plane_plane(&mut NullProbe, black_box(&cur), rect, black_box(&refp), 2, 1))
    });
}

criterion_group!(
    kernels,
    bench_transforms,
    bench_entropy,
    bench_predictors,
    bench_cache,
    bench_motion_search
);
criterion_main!(kernels);
