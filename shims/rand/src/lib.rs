//! Offline miniature substitute for `rand` (see shims/README.md).
//!
//! Provides `SmallRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng::{gen, gen_range}` surface used by the clip synthesizer.
//! The stream is deterministic (splitmix64 seeding + xorshift64*) but
//! intentionally not bit-compatible with upstream rand; no test in the
//! workspace pins golden values to the upstream stream.

use std::ops::{Range, RangeInclusive};

/// Seed-from-integer construction, as in upstream rand.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Anything samplable by `Rng::gen`.
pub trait Standard: Sized {
    fn from_u64(raw: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_u64(raw: u64) -> Self {
                raw as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_u64(raw: u64) -> Self {
        raw & 1 == 1
    }
}

impl Standard for f64 {
    fn from_u64(raw: u64) -> Self {
        (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A uniform range that knows how to sample itself from raw bits.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut SmallRng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut SmallRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + off) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut SmallRng) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = f64::from_u64(rng.next_u64());
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut SmallRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range in gen_range");
        let unit = f64::from_u64(rng.next_u64());
        start + unit * (end - start)
    }
}

/// The sampling surface used by the workspace.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_u64(self.next_u64())
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: AsSmallRng,
    {
        range.sample(self.as_small_rng())
    }
}

/// Glue so `SampleRange` can take a concrete rng without trait objects.
pub trait AsSmallRng {
    fn as_small_rng(&mut self) -> &mut SmallRng;
}

pub mod rngs {
    /// xorshift64* generator seeded through splitmix64.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SmallRng {
        pub(crate) fn from_seed_u64(seed: u64) -> Self {
            // splitmix64 step so that nearby seeds diverge immediately.
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            Self { state: z | 1 }
        }

        pub(crate) fn step(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

pub use rngs::SmallRng;

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        SmallRng::from_seed_u64(seed)
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

impl AsSmallRng for SmallRng {
    fn as_small_rng(&mut self) -> &mut SmallRng {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-128i16..=127);
            assert!((-128..=127).contains(&v));
            let u = rng.gen_range(3usize..9);
            assert!((3..9).contains(&u));
            let f = rng.gen_range(0.0..4.5f64);
            assert!((0.0..4.5).contains(&f));
            let g = rng.gen_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&g));
        }
    }

    #[test]
    fn full_width_draws_cover_high_bits() {
        let mut rng = SmallRng::seed_from_u64(1);
        let any_high = (0..64).any(|_| rng.gen::<u64>() > u64::MAX / 2);
        assert!(any_high);
    }
}
