//! No-op stand-ins for serde's derive macros (offline shim).
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize`; nothing
//! serializes through serde at runtime, so empty expansions are enough.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
