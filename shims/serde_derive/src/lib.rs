//! Working stand-ins for serde's derive macros (offline shim).
//!
//! The original shim expanded to nothing; since the persistent run
//! store needs real round-trips, these derives now generate working
//! `serde::Serialize` / `serde::Deserialize` implementations against
//! the shim's wire format (see `shims/serde`).
//!
//! No `syn`/`quote` are available offline, so parsing walks the raw
//! [`proc_macro`] token trees directly. Supported item shapes — which
//! cover every derive site in this workspace:
//!
//! * structs with named fields (any visibility, attributes skipped),
//!   including const-generic parameters (e.g. `SatCounter<const N: u32>`);
//! * fieldless enums (unit variants only, attributes such as
//!   `#[default]` skipped).
//!
//! Anything else (tuple structs, data-carrying enums, lifetime or type
//! parameters, `where` clauses) produces a `compile_error!` naming the
//! limitation rather than silently doing the wrong thing.
//!
//! Generated code:
//!
//! * structs serialize as `t<Name>` followed by each field in
//!   declaration order; deserialization checks the tag and reads the
//!   fields back in the same order;
//! * enums serialize as the variant's tag; unknown tags error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One generic parameter: its declaration (`const N: u32`) and the
/// argument to repeat at use sites (`N`).
struct GenericParam {
    decl: String,
    arg: String,
}

enum Body {
    /// Named fields, in declaration order.
    Struct(Vec<String>),
    /// Unit variants, in declaration order.
    Enum(Vec<String>),
}

struct Item {
    name: String,
    generics: Vec<GenericParam>,
    body: Body,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("compile_error tokens")
}

/// Skips attributes (`#[...]`) and visibility (`pub`, `pub(...)`)
/// starting at `i`; returns the next significant index.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` + bracket group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // `pub(crate)` etc.
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Parses the `<...>` generic parameter list starting *after* the `<`.
/// Returns the params and the index just past the closing `>`.
fn parse_generics(
    tokens: &[TokenTree],
    mut i: usize,
) -> Result<(Vec<GenericParam>, usize), String> {
    let mut depth = 1usize;
    let mut current: Vec<String> = Vec::new();
    let mut params = Vec::new();
    let mut finish_param = |current: &mut Vec<String>| -> Result<(), String> {
        if current.is_empty() {
            return Ok(());
        }
        let decl = current.join(" ");
        // The use-site argument: `const N: u32` -> `N`; `T: Bound` -> `T`.
        let arg = if current[0] == "const" {
            current.get(1).cloned().ok_or_else(|| "malformed const parameter".to_owned())?
        } else if current[0].starts_with('\'') {
            return Err("lifetime parameters are not supported by the serde shim derive".to_owned());
        } else {
            current[0].clone()
        };
        params.push(GenericParam { decl, arg });
        current.clear();
        Ok(())
    };
    loop {
        let Some(tok) = tokens.get(i) else {
            return Err("unterminated generic parameter list".to_owned());
        };
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                current.push("<".to_owned());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    finish_param(&mut current)?;
                    return Ok((params, i + 1));
                }
                current.push(">".to_owned());
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                finish_param(&mut current)?;
            }
            other => current.push(other.to_string()),
        }
        i += 1;
    }
}

/// Splits a brace group's tokens into named fields.
fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        i = skip_attrs_and_vis(tokens, i);
        let Some(tok) = tokens.get(i) else { break };
        let TokenTree::Ident(name) = tok else {
            return Err(format!("expected a field name, found `{tok}`"));
        };
        fields.push(name.to_string());
        i += 1;
        // Skip the `: Type` part up to the next top-level comma. Commas
        // inside groups are invisible here; commas inside generic
        // arguments are guarded by angle-bracket depth tracking.
        let mut angle_depth = 0usize;
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' && angle_depth > 0 => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Splits a brace group's tokens into unit enum variants.
fn parse_unit_variants(tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        i = skip_attrs_and_vis(tokens, i);
        let Some(tok) = tokens.get(i) else { break };
        let TokenTree::Ident(name) = tok else {
            return Err(format!("expected a variant name, found `{tok}`"));
        };
        variants.push(name.to_string());
        i += 1;
        match tokens.get(i) {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip to the next comma.
                while let Some(tok) = tokens.get(i) {
                    i += 1;
                    if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                        break;
                    }
                }
            }
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "variant `{name}` carries data; the serde shim derive supports only \
                     unit variants"
                ));
            }
            Some(other) => return Err(format!("unexpected token `{other}` after variant")),
        }
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => {
            return Err(format!(
                "expected `struct` or `enum`, found `{}`",
                other.map_or_else(|| "end of input".to_owned(), ToString::to_string)
            ))
        }
    };
    i += 1;
    let Some(TokenTree::Ident(name)) = tokens.get(i) else {
        return Err("expected a type name".to_owned());
    };
    let name = name.to_string();
    i += 1;
    let mut generics = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            let (params, next) = parse_generics(&tokens, i + 1)?;
            generics = params;
            i = next;
        }
    }
    if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
        return Err("`where` clauses are not supported by the serde shim derive".to_owned());
    }
    let Some(TokenTree::Group(body)) = tokens.get(i) else {
        return Err(format!("expected a body for {kind} `{name}`"));
    };
    if body.delimiter() != Delimiter::Brace {
        return Err(format!(
            "{kind} `{name}` has no named-field body; the serde shim derive supports only \
             named-field structs and unit enums"
        ));
    }
    let body_tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    let body = if kind == "struct" {
        Body::Struct(parse_named_fields(&body_tokens)?)
    } else {
        Body::Enum(parse_unit_variants(&body_tokens)?)
    };
    Ok(Item { name, generics, body })
}

/// `impl` header pieces: `<'de, const N: u32>` and `Name<N>`.
fn impl_pieces(item: &Item, extra_lifetime: Option<&str>) -> (String, String) {
    let mut decls: Vec<String> = Vec::new();
    if let Some(lt) = extra_lifetime {
        decls.push(lt.to_owned());
    }
    decls.extend(item.generics.iter().map(|g| g.decl.clone()));
    let header = if decls.is_empty() { String::new() } else { format!("<{}>", decls.join(", ")) };
    let args: Vec<String> = item.generics.iter().map(|g| g.arg.clone()).collect();
    let ty = if args.is_empty() {
        item.name.clone()
    } else {
        format!("{}<{}>", item.name, args.join(", "))
    };
    (header, ty)
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let (header, ty) = impl_pieces(&item, None);
    let body = match &item.body {
        Body::Struct(fields) => {
            let mut code = format!("        s.write_tag({:?});\n", item.name);
            for f in fields {
                code.push_str(&format!("        ::serde::Serialize::serialize(&self.{f}, s);\n"));
            }
            code
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&format!("            {}::{v} => s.write_tag({v:?}),\n", item.name));
            }
            format!("        match self {{\n{arms}        }}\n")
        }
    };
    format!(
        "impl{header} ::serde::Serialize for {ty} {{\n\
         \x20   fn serialize(&self, s: &mut ::serde::Serializer) {{\n\
         {body}\
         \x20   }}\n\
         }}\n"
    )
    .parse()
    .expect("generated Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let (header, ty) = impl_pieces(&item, Some("'de"));
    let body = match &item.body {
        Body::Struct(fields) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!(
                    "            {f}: ::serde::Deserialize::deserialize(d)?,\n"
                ));
            }
            format!(
                "        d.expect_tag({:?})?;\n\
                 \x20       ::core::result::Result::Ok({} {{\n{inits}        }})\n",
                item.name, item.name
            )
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&format!(
                    "            {v:?} => ::core::result::Result::Ok({}::{v}),\n",
                    item.name
                ));
            }
            format!(
                "        match d.read_tag()? {{\n{arms}\
                 \x20           other => ::core::result::Result::Err(\
                 ::serde::Error::unknown_variant({:?}, other)),\n\
                 \x20       }}\n",
                item.name
            )
        }
    };
    format!(
        "impl{header} ::serde::Deserialize<'de> for {ty} {{\n\
         \x20   fn deserialize(d: &mut ::serde::Deserializer<'de>) \
         -> ::core::result::Result<Self, ::serde::Error> {{\n\
         {body}\
         \x20   }}\n\
         }}\n"
    )
    .parse()
    .expect("generated Deserialize impl")
}
