//! Offline substitute for `serde` (see shims/README.md).
//!
//! Only the derive macros are used by this workspace; the traits are
//! empty markers so `derive(Serialize, Deserialize)` attributes keep
//! compiling without a reachable registry.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}
