//! Offline substitute for `serde` (see shims/README.md).
//!
//! Unlike the original marker-only shim, this is a real — if minimal —
//! serialization framework: `derive(Serialize, Deserialize)` expands to
//! working implementations (see `serde_derive`), driving a compact
//! self-describing text format. The workbench's persistent run store
//! (`vstress::exec::store`) round-trips `CharacterizationRun`s through
//! it across processes.
//!
//! This is **not** the crates.io serde API. There is no `Serializer`
//! trait hierarchy, no visitors, and only one wire format. What it
//! guarantees instead is exactly what the run store needs:
//!
//! * **bit-exact round-trips** — `f64`/`f32` are written as the hex of
//!   their IEEE-754 bits, so a deserialized value is the *identical*
//!   bit pattern, never a nearest-decimal approximation;
//! * **self-describing tokens** — every token carries a one-byte kind
//!   prefix, so a corrupt or truncated entry fails parsing loudly
//!   instead of being misread;
//! * **schema tags** — struct and enum-variant names are embedded, so
//!   decoding a value as the wrong type is an error, not garbage.
//!
//! # Wire format
//!
//! A serialized value is a sequence of space-terminated tokens:
//!
//! | token | meaning |
//! |---|---|
//! | `u<dec>` | unsigned integer (`u8`..`u64`, `usize`) |
//! | `i<dec>` | signed integer (`i8`..`i64`, `isize`) |
//! | `f<hex>` | `f64` IEEE-754 bits (`f32` widened losslessly) |
//! | `b0` / `b1` | boolean |
//! | `s<len>:<bytes>` | UTF-8 string, byte-length prefixed |
//! | `t<ident>` | tag: struct name or enum variant |
//! | `q<dec>` | sequence header: element count follows |
//!
//! Structs serialize as their name tag followed by each field in
//! declaration order; fieldless enums as their variant tag; sequences
//! (`Vec<T>`, slices, arrays) as a `q` header followed by elements.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;
use std::sync::Mutex;

/// Error produced by deserialization (serialization is infallible).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// Error for an unknown enum variant tag (used by derived code).
    pub fn unknown_variant(enum_name: &str, got: &str) -> Self {
        Error::new(format!("unknown {enum_name} variant tag {got:?}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// A value serializable to the shim's wire format.
pub trait Serialize {
    /// Appends this value's tokens to `s`.
    fn serialize(&self, s: &mut Serializer);
}

/// A value deserializable from the shim's wire format.
pub trait Deserialize<'de>: Sized {
    /// Parses one value from the deserializer's current position.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the input does not encode `Self` at the
    /// current position (wrong token kind, bad tag, short input, …).
    fn deserialize(d: &mut Deserializer<'de>) -> Result<Self, Error>;
}

/// Serializes `value` to a `String` in the shim wire format.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut s = Serializer::new();
    value.serialize(&mut s);
    s.finish()
}

/// Deserializes a value from a string produced by [`to_string`].
///
/// The entire input must be consumed; trailing tokens are an error.
///
/// # Errors
///
/// Returns [`Error`] on any malformed, truncated, or trailing input.
pub fn from_str<T>(input: &str) -> Result<T, Error>
where
    T: for<'de> Deserialize<'de>,
{
    let mut d = Deserializer::new(input);
    let v = T::deserialize(&mut d)?;
    d.end()?;
    Ok(v)
}

/// Token writer for the wire format.
#[derive(Debug, Default)]
pub struct Serializer {
    out: String,
}

impl Serializer {
    /// An empty serializer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The serialized text accumulated so far.
    pub fn finish(self) -> String {
        self.out
    }

    /// Writes an unsigned integer token.
    pub fn write_u64(&mut self, v: u64) {
        self.out.push('u');
        self.out.push_str(&v.to_string());
        self.out.push(' ');
    }

    /// Writes a signed integer token.
    pub fn write_i64(&mut self, v: i64) {
        self.out.push('i');
        self.out.push_str(&v.to_string());
        self.out.push(' ');
    }

    /// Writes a float token (IEEE-754 bits in hex; bit-exact round-trip).
    pub fn write_f64(&mut self, v: f64) {
        self.out.push('f');
        self.out.push_str(&format!("{:x}", v.to_bits()));
        self.out.push(' ');
    }

    /// Writes a boolean token.
    pub fn write_bool(&mut self, v: bool) {
        self.out.push_str(if v { "b1 " } else { "b0 " });
    }

    /// Writes a byte-length-prefixed string token.
    pub fn write_str(&mut self, v: &str) {
        self.out.push('s');
        self.out.push_str(&v.len().to_string());
        self.out.push(':');
        self.out.push_str(v);
        self.out.push(' ');
    }

    /// Writes a tag token (a struct name or enum variant; must be a
    /// plain identifier).
    pub fn write_tag(&mut self, tag: &str) {
        debug_assert!(
            !tag.is_empty() && tag.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "tags must be identifiers, got {tag:?}"
        );
        self.out.push('t');
        self.out.push_str(tag);
        self.out.push(' ');
    }

    /// Writes a sequence header announcing `len` elements.
    pub fn write_seq_len(&mut self, len: usize) {
        self.out.push('q');
        self.out.push_str(&len.to_string());
        self.out.push(' ');
    }
}

/// Token reader over input produced by [`Serializer`].
#[derive(Debug)]
pub struct Deserializer<'de> {
    input: &'de str,
    pos: usize,
}

impl<'de> Deserializer<'de> {
    /// A deserializer at the start of `input`.
    pub fn new(input: &'de str) -> Self {
        Deserializer { input, pos: 0 }
    }

    /// Asserts the whole input was consumed.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] if non-whitespace input remains.
    pub fn end(&self) -> Result<(), Error> {
        if self.input[self.pos..].trim().is_empty() {
            Ok(())
        } else {
            Err(Error::new(format!("trailing input at byte {}", self.pos)))
        }
    }

    /// Reads the next token's kind byte and body. For string tokens the
    /// body is only the length prefix; the payload is read separately.
    fn next_token(&mut self) -> Result<(u8, &'de str), Error> {
        let rest = &self.input[self.pos..];
        let start = rest.len() - rest.trim_start().len();
        let rest = &rest[start..];
        self.pos += start;
        let Some(kind) = rest.bytes().next() else {
            return Err(Error::new("unexpected end of input"));
        };
        self.pos += 1;
        let body_start = self.pos;
        let rest = &rest[1..];
        // String tokens contain raw payload bytes (possibly spaces), so
        // their token text ends at the ':' length delimiter instead.
        let end = match kind {
            b's' => rest.find(':').map(|i| i + 1),
            _ => Some(rest.find(' ').unwrap_or(rest.len())),
        };
        let Some(end) = end else {
            return Err(Error::new("string token missing ':' delimiter"));
        };
        self.pos += end;
        if kind != b's' {
            self.pos = (self.pos + 1).min(self.input.len()); // consume the space
        }
        Ok((kind, &self.input[body_start..body_start + end]))
    }

    fn expect_kind(&mut self, want: u8, what: &str) -> Result<&'de str, Error> {
        let (kind, body) = self.next_token()?;
        if kind != want {
            return Err(Error::new(format!(
                "expected {what}, found token kind {:?} at byte {}",
                kind as char, self.pos
            )));
        }
        Ok(body)
    }

    /// Reads an unsigned integer token.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] if the next token is not a valid `u` token.
    pub fn read_u64(&mut self) -> Result<u64, Error> {
        let body = self.expect_kind(b'u', "unsigned integer")?;
        body.parse().map_err(|_| Error::new(format!("bad unsigned integer {body:?}")))
    }

    /// Reads a signed integer token.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] if the next token is not a valid `i` token.
    pub fn read_i64(&mut self) -> Result<i64, Error> {
        let body = self.expect_kind(b'i', "signed integer")?;
        body.parse().map_err(|_| Error::new(format!("bad signed integer {body:?}")))
    }

    /// Reads a float token (bit-exact).
    ///
    /// # Errors
    ///
    /// Returns [`Error`] if the next token is not a valid `f` token.
    pub fn read_f64(&mut self) -> Result<f64, Error> {
        let body = self.expect_kind(b'f', "float")?;
        u64::from_str_radix(body, 16)
            .map(f64::from_bits)
            .map_err(|_| Error::new(format!("bad float bits {body:?}")))
    }

    /// Reads a boolean token.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] if the next token is not `b0` or `b1`.
    pub fn read_bool(&mut self) -> Result<bool, Error> {
        match self.expect_kind(b'b', "boolean")? {
            "0" => Ok(false),
            "1" => Ok(true),
            other => Err(Error::new(format!("bad boolean {other:?}"))),
        }
    }

    /// Reads a string token, borrowing the payload from the input.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] on a malformed length prefix or short payload.
    pub fn read_str(&mut self) -> Result<&'de str, Error> {
        let body = self.expect_kind(b's', "string")?;
        let len_text = body.strip_suffix(':').unwrap_or(body);
        let len: usize =
            len_text.parse().map_err(|_| Error::new(format!("bad string length {len_text:?}")))?;
        let payload = self
            .input
            .get(self.pos..self.pos + len)
            .ok_or_else(|| Error::new("string payload truncated or splits a UTF-8 sequence"))?;
        self.pos += len;
        // Consume the trailing space separator, if present.
        if self.input.as_bytes().get(self.pos) == Some(&b' ') {
            self.pos += 1;
        }
        Ok(payload)
    }

    /// Reads a tag token (struct name / enum variant).
    ///
    /// # Errors
    ///
    /// Returns [`Error`] if the next token is not a tag.
    pub fn read_tag(&mut self) -> Result<&'de str, Error> {
        self.expect_kind(b't', "tag")
    }

    /// Reads a tag token and checks it equals `want`.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] on a missing or mismatching tag.
    pub fn expect_tag(&mut self, want: &str) -> Result<(), Error> {
        let got = self.read_tag()?;
        if got == want {
            Ok(())
        } else {
            Err(Error::new(format!("expected tag {want:?}, found {got:?}")))
        }
    }

    /// Reads a sequence header, returning the element count.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] if the next token is not a sequence header.
    pub fn read_seq_len(&mut self) -> Result<usize, Error> {
        let body = self.expect_kind(b'q', "sequence header")?;
        body.parse().map_err(|_| Error::new(format!("bad sequence length {body:?}")))
    }
}

// ---------------------------------------------------------------------------
// Implementations for std types.

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, s: &mut Serializer) {
        (**self).serialize(s);
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, s: &mut Serializer) {
                s.write_u64(*self as u64);
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize(d: &mut Deserializer<'de>) -> Result<Self, Error> {
                let v = d.read_u64()?;
                <$t>::try_from(v)
                    .map_err(|_| Error::new(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, s: &mut Serializer) {
                s.write_i64(*self as i64);
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize(d: &mut Deserializer<'de>) -> Result<Self, Error> {
                let v = d.read_i64()?;
                <$t>::try_from(v)
                    .map_err(|_| Error::new(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self, s: &mut Serializer) {
        s.write_f64(*self);
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize(d: &mut Deserializer<'de>) -> Result<Self, Error> {
        d.read_f64()
    }
}

impl Serialize for f32 {
    fn serialize(&self, s: &mut Serializer) {
        s.write_f64(f64::from(*self));
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize(d: &mut Deserializer<'de>) -> Result<Self, Error> {
        // Widening f32 -> f64 is exact, so narrowing back is too.
        Ok(d.read_f64()? as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self, s: &mut Serializer) {
        s.write_bool(*self);
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize(d: &mut Deserializer<'de>) -> Result<Self, Error> {
        d.read_bool()
    }
}

impl Serialize for str {
    fn serialize(&self, s: &mut Serializer) {
        s.write_str(self);
    }
}

impl Serialize for String {
    fn serialize(&self, s: &mut Serializer) {
        s.write_str(self);
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize(d: &mut Deserializer<'de>) -> Result<Self, Error> {
        Ok(d.read_str()?.to_owned())
    }
}

/// Interns `s`, leaking at most one copy per distinct string.
///
/// Exists so `&'static str` fields (e.g. catalogue clip names) can
/// round-trip; the pool is tiny and bounded by the set of distinct
/// strings ever deserialized into `&'static str` positions.
fn intern(s: &str) -> &'static str {
    static POOL: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut pool = POOL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(hit) = pool.iter().find(|x| **x == s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    pool.push(leaked);
    leaked
}

impl<'de> Deserialize<'de> for &'static str {
    fn deserialize(d: &mut Deserializer<'de>) -> Result<Self, Error> {
        Ok(intern(d.read_str()?))
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, s: &mut Serializer) {
        s.write_seq_len(self.len());
        for item in self {
            item.serialize(s);
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, s: &mut Serializer) {
        self.as_slice().serialize(s);
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize(d: &mut Deserializer<'de>) -> Result<Self, Error> {
        let len = d.read_seq_len()?;
        // Cap the pre-allocation: `len` is untrusted input.
        let mut v = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            v.push(T::deserialize(d)?);
        }
        Ok(v)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self, s: &mut Serializer) {
        self.as_slice().serialize(s);
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize(d: &mut Deserializer<'de>) -> Result<Self, Error> {
        let len = d.read_seq_len()?;
        if len != N {
            return Err(Error::new(format!("expected array of {N} elements, found {len}")));
        }
        let mut v = Vec::with_capacity(N);
        for _ in 0..N {
            v.push(T::deserialize(d)?);
        }
        v.try_into().map_err(|_| Error::new("array length mismatch"))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self, s: &mut Serializer) {
        self.0.serialize(s);
        self.1.serialize(s);
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn deserialize(d: &mut Deserializer<'de>) -> Result<Self, Error> {
        Ok((A::deserialize(d)?, B::deserialize(d)?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self, s: &mut Serializer) {
        self.0.serialize(s);
        self.1.serialize(s);
        self.2.serialize(s);
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
    fn deserialize(d: &mut Deserializer<'de>) -> Result<Self, Error> {
        Ok((A::deserialize(d)?, B::deserialize(d)?, C::deserialize(d)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, s: &mut Serializer) {
        match self {
            Some(v) => {
                s.write_bool(true);
                v.serialize(s);
            }
            None => s.write_bool(false),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize(d: &mut Deserializer<'de>) -> Result<Self, Error> {
        if d.read_bool()? {
            Ok(Some(T::deserialize(d)?))
        } else {
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T>(v: &T) -> T
    where
        T: Serialize + for<'de> Deserialize<'de>,
    {
        from_str(&to_string(v)).expect("round-trip")
    }

    #[test]
    fn integers_roundtrip() {
        assert_eq!(roundtrip(&0u64), 0);
        assert_eq!(roundtrip(&u64::MAX), u64::MAX);
        assert_eq!(roundtrip(&255u8), 255);
        assert_eq!(roundtrip(&-42i64), -42);
        assert_eq!(roundtrip(&i64::MIN), i64::MIN);
        assert_eq!(roundtrip(&usize::MAX), usize::MAX);
    }

    #[test]
    fn narrowing_out_of_range_is_an_error() {
        assert!(from_str::<u8>(&to_string(&300u64)).is_err());
        assert!(from_str::<i8>(&to_string(&-300i64)).is_err());
    }

    #[test]
    fn floats_roundtrip_bit_exactly() {
        for v in [0.0, -0.0, 1.5, f64::MIN_POSITIVE, f64::MAX, 1.0 / 3.0, f64::NAN] {
            let back = roundtrip(&v);
            assert_eq!(back.to_bits(), v.to_bits(), "{v}");
        }
        assert_eq!(roundtrip(&0.1f32).to_bits(), 0.1f32.to_bits());
    }

    #[test]
    fn strings_roundtrip_including_spaces_and_unicode() {
        for s in ["", "plain", "with spaces and  runs", "tabs\tand\nnewlines", "ünïcödé → ok"]
        {
            assert_eq!(roundtrip(&s.to_owned()), s);
        }
    }

    #[test]
    fn static_str_interns() {
        let a: &'static str = from_str(&to_string("game1")).unwrap();
        let b: &'static str = from_str(&to_string("game1")).unwrap();
        assert_eq!(a, "game1");
        assert!(std::ptr::eq(a, b), "same string must intern to the same allocation");
    }

    #[test]
    fn sequences_and_tuples_roundtrip() {
        let v = vec![vec![1u64, 2], vec![], vec![3]];
        assert_eq!(roundtrip(&v), v);
        let arr = [1.5f64, -2.5, 0.0];
        assert_eq!(roundtrip(&arr), arr);
        let t = (vec!["a".to_owned()], 7u64);
        assert_eq!(roundtrip(&t), t);
        assert_eq!(roundtrip(&Some(5u32)), Some(5));
        assert_eq!(roundtrip(&None::<u32>), None);
    }

    #[test]
    fn truncated_input_is_an_error() {
        let full = to_string(&vec![1u64, 2, 3]);
        for cut in 1..full.len() - 1 {
            // Every strict prefix must fail loudly, never misparse.
            assert!(from_str::<Vec<u64>>(&full[..cut]).is_err(), "prefix {cut} parsed");
        }
    }

    #[test]
    fn trailing_input_is_an_error() {
        let mut text = to_string(&1u64);
        text.push_str("u2 ");
        assert!(from_str::<u64>(&text).is_err());
    }

    #[test]
    fn kind_mismatch_is_an_error() {
        assert!(from_str::<u64>(&to_string(&1.5f64)).is_err());
        assert!(from_str::<String>(&to_string(&true)).is_err());
    }

    #[test]
    fn tags_check_identity() {
        let mut s = Serializer::new();
        s.write_tag("CoreReport");
        let text = s.finish();
        let mut d = Deserializer::new(&text);
        assert!(d.expect_tag("OtherThing").is_err());
        let mut d = Deserializer::new(&text);
        assert!(d.expect_tag("CoreReport").is_ok());
    }
}
