//! Offline miniature substitute for `criterion` (see shims/README.md).
//!
//! Each benchmark body runs a handful of timed iterations and prints a
//! coarse mean; there is no statistical analysis. The point is that
//! `cargo bench` / `cargo build --all-targets` compile and run offline.

use std::time::Instant;

pub use std::hint::black_box;

/// Per-iteration-batch throughput annotation (accepted, echoed in output).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), throughput: None }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), None, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u32,
    elapsed: std::time::Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher { iters: 3, elapsed: std::time::Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            println!(
                "{id}: {:.3} ms/iter, {:.1} Melem/s",
                per_iter * 1e3,
                n as f64 / per_iter / 1e6
            );
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            println!(
                "{id}: {:.3} ms/iter, {:.1} MiB/s",
                per_iter * 1e3,
                n as f64 / per_iter / (1 << 20) as f64
            );
        }
        _ => println!("{id}: {:.3} ms/iter", per_iter * 1e3),
    }
}

/// Builds `pub fn $name()` that runs each target against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
