//! Offline miniature substitute for `proptest` (see shims/README.md).
//!
//! Implements the subset of the proptest API this workspace uses:
//! uniform sampling of strategies with a per-test deterministic seed,
//! the `proptest!` block macro, and `prop_assert*` macros. There is no
//! shrinking — a failing case panics with the sampled values visible in
//! the assertion message.

pub mod test_runner {
    /// Deterministic per-test RNG (xorshift64* seeded by FNV-1a of the
    /// fully qualified test name), so failures reproduce across runs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Self { state: h | 1 }
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw from `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            self.next_u64() % n
        }
    }

    /// Per-proptest-block configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values; sampled uniformly (no shrinking).
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + off) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128 % span) as i128;
                    (start as i128 + off) as $t
                }
            }
        )*};
    }
    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (start, end) = (*self.start(), *self.end());
            start + rng.unit_f64() * (end - start)
        }
    }

    /// `any::<T>()` — the full domain of `T`.
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    pub fn any<T>() -> Any<T> {
        Any { _marker: std::marker::PhantomData }
    }

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec_strategy<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub struct Select<T> {
        choices: Vec<T>,
    }

    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        assert!(!choices.is_empty(), "select on empty set");
        Select { choices }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.choices.len() as u64) as usize;
            self.choices[i].clone()
        }
    }
}

/// The `prop::` namespace used from the prelude (`prop::collection::vec`,
/// `prop::sample::select`).
pub mod prop {
    pub mod collection {
        use crate::strategy::{vec_strategy, Strategy, VecStrategy};
        use std::ops::Range;

        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            vec_strategy(element, size)
        }
    }

    pub mod sample {
        pub use crate::strategy::{select, Select};
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            (<$crate::test_runner::Config as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cfg.cases {
                let _ = __case;
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}
