//! Portable fixed-width SIMD lane types for the vstress hot kernels.
//!
//! Unlike its siblings in `shims/`, this crate is not a stand-in for a
//! crates.io dependency — it is the workspace's first-party
//! data-parallel layer, shaped so that the *scalar* lane loops below
//! compile to vector instructions on any target LLVM can vectorize
//! for, without `unsafe`, intrinsics, or nightly `std::simd`.
//!
//! The design rules that make that reliable:
//!
//! * **Fixed width.** Every type wraps a `[T; N]` with `N` known at
//!   compile time, so lane loops fully unroll and the optimizer sees a
//!   straight-line dependency graph, not a trip-count guess.
//! * **Whole-vector ops only.** No lane extraction in hot ops; the
//!   horizontal reductions ([`u8x16::sad`], [`u32x4::sum`]) are the
//!   explicit, deliberate exits from vector land.
//! * **Widening built in.** 8-bit pixel math overflows 8-bit lanes
//!   almost immediately; the ops that need headroom
//!   ([`u32x4::accum_abs_diff`], [`u8x16::widen`]) widen internally so
//!   callers never write an overflowing expression.
//!
//! All arithmetic is wrapping: lane types model machine vectors, and
//! the kernels that use them guarantee their own value ranges (pinned
//! by the equivalence oracles in `crates/codecs/tests/`).

#![forbid(unsafe_code)]
// The index-parallel `for i in 0..N { out[i] = f(a.0[i], b.0[i]) }`
// shape is deliberate: identical trip counts over fixed arrays are what
// LLVM's SLP vectorizer matches most reliably, and the iterator-zip
// equivalent obscures that the loops are lane-wise.
#![allow(clippy::needless_range_loop)]
// `add`/`mul`/`shr` mirror the `std::simd` method surface on purpose;
// operator traits would hide the wrapping semantics at call sites.
#![allow(clippy::should_implement_trait)]

/// Sixteen 8-bit lanes — one SSE register of pixels.
#[allow(non_camel_case_types)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct u8x16(pub [u8; 16]);

/// Eight 16-bit lanes — the widening target for 8-bit pixel sums.
#[allow(non_camel_case_types)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct u16x8(pub [u16; 8]);

/// Four 32-bit lanes — block-level accumulators reduced once per call.
#[allow(non_camel_case_types)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct u32x4(pub [u32; 4]);

impl u8x16 {
    /// Lane count.
    pub const LANES: usize = 16;

    /// All lanes set to `v`.
    #[inline]
    #[must_use]
    pub const fn splat(v: u8) -> Self {
        u8x16([v; 16])
    }

    /// Loads the first 16 bytes of `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` has fewer than 16 bytes.
    #[inline]
    #[must_use]
    pub fn from_slice(s: &[u8]) -> Self {
        let mut l = [0u8; 16];
        l.copy_from_slice(&s[..16]);
        u8x16(l)
    }

    /// Per-lane absolute difference `|a - b|` (no widening needed:
    /// the result of `u8::abs_diff` always fits a `u8`).
    #[inline]
    #[must_use]
    pub fn abs_diff(self, o: Self) -> Self {
        let mut l = [0u8; 16];
        for i in 0..16 {
            l[i] = self.0[i].abs_diff(o.0[i]);
        }
        u8x16(l)
    }

    /// Per-lane rounding average `(a + b + 1) >> 1`, computed in 16-bit
    /// headroom — the `pavgb` idiom used by half-pel interpolation.
    #[inline]
    #[must_use]
    pub fn avg_ceil(self, o: Self) -> Self {
        let mut l = [0u8; 16];
        for i in 0..16 {
            l[i] = ((self.0[i] as u16 + o.0[i] as u16 + 1) >> 1) as u8;
        }
        u8x16(l)
    }

    /// Widens to two 8-lane 16-bit halves `(lo, hi)`.
    #[inline]
    #[must_use]
    pub fn widen(self) -> (u16x8, u16x8) {
        let mut lo = [0u16; 8];
        let mut hi = [0u16; 8];
        for i in 0..8 {
            lo[i] = self.0[i] as u16;
            hi[i] = self.0[i + 8] as u16;
        }
        (u16x8(lo), u16x8(hi))
    }

    /// Horizontal sum of per-lane absolute differences — the `psadbw`
    /// idiom. Max value `16 * 255` fits comfortably in `u32`.
    #[inline]
    #[must_use]
    pub fn sad(self, o: Self) -> u32 {
        let mut s = 0u32;
        for i in 0..16 {
            s += self.0[i].abs_diff(o.0[i]) as u32;
        }
        s
    }
}

impl u16x8 {
    /// Lane count.
    pub const LANES: usize = 8;

    /// All lanes set to `v`.
    #[inline]
    #[must_use]
    pub const fn splat(v: u16) -> Self {
        u16x8([v; 8])
    }

    /// Per-lane wrapping add.
    #[inline]
    #[must_use]
    pub fn add(self, o: Self) -> Self {
        let mut l = [0u16; 8];
        for i in 0..8 {
            l[i] = self.0[i].wrapping_add(o.0[i]);
        }
        u16x8(l)
    }

    /// Per-lane logical shift right.
    #[inline]
    #[must_use]
    pub fn shr(self, n: u32) -> Self {
        let mut l = [0u16; 8];
        for i in 0..8 {
            l[i] = self.0[i] >> n;
        }
        u16x8(l)
    }

    /// Narrows two 8-lane halves back to 16 8-bit lanes (callers
    /// guarantee values fit; lanes are truncated like a machine
    /// `packuswb` after a correct shift).
    #[inline]
    #[must_use]
    pub fn narrow(lo: Self, hi: Self) -> u8x16 {
        let mut l = [0u8; 16];
        for i in 0..8 {
            l[i] = lo.0[i] as u8;
            l[i + 8] = hi.0[i] as u8;
        }
        u8x16(l)
    }
}

impl u32x4 {
    /// Lane count.
    pub const LANES: usize = 4;

    /// All lanes set to `v`.
    #[inline]
    #[must_use]
    pub const fn splat(v: u32) -> Self {
        u32x4([v; 4])
    }

    /// Loads the first 4 values of `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` has fewer than 4 values.
    #[inline]
    #[must_use]
    pub fn from_slice(s: &[u32]) -> Self {
        let mut l = [0u32; 4];
        l.copy_from_slice(&s[..4]);
        u32x4(l)
    }

    /// Per-lane wrapping add.
    #[inline]
    #[must_use]
    pub fn add(self, o: Self) -> Self {
        let mut l = [0u32; 4];
        for i in 0..4 {
            l[i] = self.0[i].wrapping_add(o.0[i]);
        }
        u32x4(l)
    }

    /// Per-lane wrapping multiply.
    #[inline]
    #[must_use]
    pub fn mul(self, o: Self) -> Self {
        let mut l = [0u32; 4];
        for i in 0..4 {
            l[i] = self.0[i].wrapping_mul(o.0[i]);
        }
        u32x4(l)
    }

    /// Per-lane logical shift right.
    #[inline]
    #[must_use]
    pub fn shr(self, n: u32) -> Self {
        let mut l = [0u32; 4];
        for i in 0..4 {
            l[i] = self.0[i] >> n;
        }
        u32x4(l)
    }

    /// Accumulates the 16 widened absolute differences `|a - b|` into
    /// the four lanes (lane `j` takes elements `4j..4j+4`). Keeping the
    /// accumulator vectorial defers the horizontal reduction to one
    /// [`u32x4::sum`] per *block* instead of one per row.
    #[inline]
    #[must_use]
    pub fn accum_abs_diff(self, a: u8x16, b: u8x16) -> Self {
        let mut l = self.0;
        for (j, lane) in l.iter_mut().enumerate() {
            let mut s = 0u32;
            for k in 0..4 {
                s += a.0[4 * j + k].abs_diff(b.0[4 * j + k]) as u32;
            }
            *lane = lane.wrapping_add(s);
        }
        u32x4(l)
    }

    /// Accumulates the 16 widened squared differences `(a - b)^2` into
    /// the four lanes (same layout as [`u32x4::accum_abs_diff`]).
    #[inline]
    #[must_use]
    pub fn accum_sq_diff(self, a: u8x16, b: u8x16) -> Self {
        let mut l = self.0;
        for (j, lane) in l.iter_mut().enumerate() {
            let mut s = 0u32;
            for k in 0..4 {
                let d = a.0[4 * j + k].abs_diff(b.0[4 * j + k]) as u32;
                s += d * d;
            }
            *lane = lane.wrapping_add(s);
        }
        u32x4(l)
    }

    /// Horizontal sum of the four lanes.
    #[inline]
    #[must_use]
    pub fn sum(self) -> u32 {
        self.0[0].wrapping_add(self.0[1]).wrapping_add(self.0[2]).wrapping_add(self.0[3])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sad_matches_scalar() {
        let a = u8x16([0, 255, 3, 7, 9, 200, 1, 0, 128, 127, 64, 32, 16, 8, 4, 2]);
        let b = u8x16([255, 0, 7, 3, 9, 100, 2, 1, 127, 128, 0, 0, 0, 0, 0, 0]);
        let scalar: u32 = (0..16).map(|i| a.0[i].abs_diff(b.0[i]) as u32).sum();
        assert_eq!(a.sad(b), scalar);
        assert_eq!(u32x4::splat(0).accum_abs_diff(a, b).sum(), scalar);
    }

    #[test]
    fn sq_diff_matches_scalar() {
        let a = u8x16([0, 255, 3, 7, 9, 200, 1, 0, 128, 127, 64, 32, 16, 8, 4, 2]);
        let b = u8x16([255, 0, 7, 3, 9, 100, 2, 1, 127, 128, 0, 0, 0, 0, 0, 0]);
        let scalar: u32 = (0..16)
            .map(|i| {
                let d = a.0[i].abs_diff(b.0[i]) as u32;
                d * d
            })
            .sum();
        assert_eq!(u32x4::splat(0).accum_sq_diff(a, b).sum(), scalar);
    }

    #[test]
    fn avg_ceil_rounds_up() {
        let a = u8x16::splat(1);
        let b = u8x16::splat(2);
        assert_eq!(a.avg_ceil(b), u8x16::splat(2));
        assert_eq!(u8x16::splat(255).avg_ceil(u8x16::splat(255)), u8x16::splat(255));
        assert_eq!(u8x16::splat(0).avg_ceil(u8x16::splat(0)), u8x16::splat(0));
    }

    #[test]
    fn widen_narrow_round_trips() {
        let a = u8x16([0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 250, 255]);
        let (lo, hi) = a.widen();
        assert_eq!(u16x8::narrow(lo, hi), a);
        assert_eq!(lo.add(u16x8::splat(2)).shr(1).0[0], 1);
    }

    #[test]
    fn from_slice_takes_prefix() {
        let bytes: Vec<u8> = (0..32).collect();
        assert_eq!(
            u8x16::from_slice(&bytes).0,
            [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15]
        );
    }
}
